//! Mini-batch training loop over the batched GEMM compute core.
//!
//! [`train`] runs every optimisation step through
//! [`Cnn::forward_batch_cached`] / [`Cnn::backward_batch`]: one GEMM
//! per layer for the batch's activations, one GEMM per layer for its
//! weight gradients (the batch reduction fused into the GEMM inner
//! dimension), and a single fused softmax-cross-entropy pass over the
//! logit rows. The optimiser consumes one accumulated gradient set per
//! step. [`train_reference`] pins the original per-sample
//! forward/backward loop — numerically equivalent (losses match within
//! float tolerance under the same seed) and the baseline the batched
//! path is benchmarked against.
//!
//! The loss at every step is recorded so `repro fig11` can plot
//! convergence curves like the paper's Figure 11, and each report
//! carries per-epoch samples/sec plus step-time statistics.

use crate::loss::{softmax, softmax_cross_entropy, softmax_cross_entropy_batch};
use crate::network::{argmax, Cnn, CnnBatchCache, CnnGrads, Sample};
use crate::optimizer::{Optimizer, OptimizerKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Shuffling seed.
    pub seed: u64,
    /// Only update the head (top evolvement).
    pub freeze_towers: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 32,
            lr: 1e-3,
            optimizer: OptimizerKind::adam(),
            seed: 7,
            freeze_towers: false,
        }
    }
}

/// Wall-clock statistics over the optimisation steps of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StepTimeStats {
    /// Number of optimisation steps timed.
    pub steps: usize,
    /// Mean step duration in milliseconds.
    pub mean_ms: f64,
    /// Fastest step in milliseconds.
    pub min_ms: f64,
    /// Slowest step in milliseconds.
    pub max_ms: f64,
}

/// What a training run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean batch loss at every optimisation step, in order.
    pub loss_history: Vec<f32>,
    /// Training accuracy measured after each epoch.
    pub epoch_train_acc: Vec<f64>,
    /// Training throughput per epoch (samples / step wall-time,
    /// excluding the end-of-epoch evaluation pass).
    pub epoch_samples_per_sec: Vec<f64>,
    /// Step wall-time statistics over the whole run.
    pub step_time: StepTimeStats,
}

/// Reusable buffers for the batched training step: the activation
/// cache, one accumulated gradient set, and the logit-gradient /
/// label scratch. Create once per training run and hand to every
/// [`train_step`]; all allocations are amortised across steps.
#[derive(Debug, Clone)]
pub struct BatchTrainState {
    cache: CnnBatchCache,
    grads: CnnGrads,
    glogits: Vec<f32>,
    labels: Vec<usize>,
}

impl BatchTrainState {
    /// Buffers sized for `net`'s parameter layout.
    pub fn new(net: &Cnn) -> Self {
        Self {
            cache: CnnBatchCache::default(),
            grads: net.zero_grads(),
            glogits: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// Trains `net` on `samples` in place via the batched GEMM path.
pub fn train(net: &mut Cnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    let mut state = BatchTrainState::new(net);
    train_impl(net, samples, cfg, move |net, samples, batch, opt| {
        train_step(net, samples, batch, opt, &mut state)
    })
}

/// Trains `net` via the pinned per-sample reference path. Slower than
/// [`train`] but numerically the baseline: under the same config and
/// seed both paths see identical batches and their loss histories
/// agree to float tolerance.
pub fn train_reference(net: &mut Cnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    let mut accum = net.zero_grads();
    train_impl(net, samples, cfg, move |net, samples, batch, opt| {
        train_step_reference(net, samples, batch, opt, &mut accum)
    })
}

/// Shared epoch/shuffle/instrumentation loop; `step` is either the
/// batched or the per-sample reference step. Both paths draw batches
/// from the same seeded shuffle, so their step sequences line up
/// one-to-one.
fn train_impl(
    net: &mut Cnn,
    samples: &[Sample],
    cfg: &TrainConfig,
    mut step: impl FnMut(&mut Cnn, &[Sample], &[usize], &mut Optimizer) -> f32,
) -> TrainReport {
    let mut report = TrainReport {
        loss_history: Vec::new(),
        epoch_train_acc: Vec::new(),
        epoch_samples_per_sec: Vec::new(),
        step_time: StepTimeStats::default(),
    };
    if samples.is_empty() || cfg.epochs == 0 {
        return report;
    }
    let mut opt = Optimizer::new(net, cfg.optimizer, cfg.lr, cfg.freeze_towers);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (mut total_s, mut min_s, mut max_s, mut steps) = (0.0f64, f64::INFINITY, 0.0f64, 0usize);
    for _epoch in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut epoch_s = 0.0f64;
        for batch_idx in order.chunks(cfg.batch_size.max(1)) {
            let t0 = Instant::now();
            let loss = step(net, samples, batch_idx, &mut opt);
            let dt = t0.elapsed().as_secs_f64();
            epoch_s += dt;
            total_s += dt;
            min_s = min_s.min(dt);
            max_s = max_s.max(dt);
            steps += 1;
            report.loss_history.push(loss);
        }
        report.epoch_samples_per_sec.push(if epoch_s > 0.0 {
            samples.len() as f64 / epoch_s
        } else {
            0.0
        });
        report.epoch_train_acc.push(evaluate(net, samples));
    }
    report.step_time = StepTimeStats {
        steps,
        mean_ms: 1e3 * total_s / steps as f64,
        min_ms: 1e3 * min_s,
        max_ms: 1e3 * max_s,
    };
    report
}

/// One batched optimisation step on the given sample indices; returns
/// the mean batch loss *before* the update.
///
/// The whole batch runs as one forward pass (one GEMM per layer), one
/// fused loss/gradient pass over the logit rows, and one backward pass
/// whose weight-gradient GEMMs fold the batch reduction into their
/// inner dimension — the optimiser then applies the single accumulated
/// (already batch-averaged) gradient set.
pub fn train_step(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    opt: &mut Optimizer,
    state: &mut BatchTrainState,
) -> f32 {
    let refs: Vec<&[crate::tensor::Tensor]> = batch
        .iter()
        .map(|&i| samples[i].channels.as_slice())
        .collect();
    state.labels.clear();
    state.labels.extend(batch.iter().map(|&i| samples[i].label));
    net.forward_batch_cached(&refs, &mut state.cache);
    let (logits, classes) = state.cache.logits_rows();
    let loss = softmax_cross_entropy_batch(logits, classes, &state.labels, &mut state.glogits);
    net.backward_batch(
        &mut state.cache,
        &state.glogits[..batch.len() * classes],
        opt.freeze_towers(),
        &mut state.grads,
    );
    // The loss gradient is pre-scaled by 1/batch, so the summed
    // parameter gradients are already batch means.
    opt.step(net, &state.grads, 1.0);
    loss
}

/// One per-sample reference optimisation step; returns the mean batch
/// loss *before* the update.
///
/// Gradients reduce sequentially into the single preallocated `accum`
/// set (cleared on entry) — no per-sample gradient sets are kept. The
/// optimiser folds the batch mean into the update via its `scale`
/// argument instead of rescaling the accumulator first.
pub fn train_step_reference(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    opt: &mut Optimizer,
    accum: &mut CnnGrads,
) -> f32 {
    accum.clear();
    let mut lsum = 0.0f32;
    for &i in batch {
        let s = &samples[i];
        let cache = net.forward_cached(&s.channels);
        let (loss, gl) = softmax_cross_entropy(&cache.logits, s.label);
        let sg = net.backward(&cache, &gl);
        accum.add_assign(&sg);
        lsum += loss;
    }
    let scale = 1.0 / batch.len() as f32;
    opt.step(net, accum, scale);
    lsum * scale
}

/// Inference batch size for [`evaluate`] and [`confusion_matrix`]:
/// chunks of this many samples are packed into one GEMM per layer.
pub const EVAL_BATCH: usize = 64;

/// Fraction of samples whose argmax prediction matches the label.
///
/// Inference runs through [`Cnn::predict_batch`] in chunks of
/// [`EVAL_BATCH`] samples, so each network layer does one GEMM per
/// chunk instead of one per sample.
///
/// An empty slice scores `0.0` — a defined value rather than the
/// `0 / 0 = NaN` a naive ratio would produce — and a single sample
/// degenerates to a batch of one (scoring exactly `0.0` or `1.0`).
pub fn evaluate(net: &Cnn, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct: usize = batched_predictions(net, samples)
        .into_iter()
        .zip(samples)
        .filter(|(p, s)| *p == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Predicted label for every sample, via chunked batched inference.
fn batched_predictions(net: &Cnn, samples: &[Sample]) -> Vec<usize> {
    let mut preds = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(EVAL_BATCH) {
        let refs: Vec<&[crate::tensor::Tensor]> =
            chunk.iter().map(|s| s.channels.as_slice()).collect();
        preds.extend(net.predict_batch(&refs));
    }
    preds
}

/// Class-probability vector for one sample.
pub fn predict_proba(net: &Cnn, channels: &[crate::tensor::Tensor]) -> Vec<f32> {
    softmax(net.forward(channels).data())
}

/// `confusion[truth][predicted]` counts over `samples`, using the
/// same chunked batched inference as [`evaluate`].
pub fn confusion_matrix(net: &Cnn, samples: &[Sample], classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; classes]; classes];
    for (p, s) in batched_predictions(net, samples).into_iter().zip(samples) {
        m[s.label][p] += 1;
    }
    m
}

/// Per-class recall and precision from a confusion matrix; `None` when
/// the denominator is empty (no ground truth / no predictions for that
/// class), matching the "-" cells of the paper's Table 3.
pub fn recall_precision(confusion: &[Vec<usize>]) -> Vec<(Option<f64>, Option<f64>)> {
    let k = confusion.len();
    (0..k)
        .map(|c| {
            let truth: usize = confusion[c].iter().sum();
            let predicted: usize = (0..k).map(|t| confusion[t][c]).sum();
            let hit = confusion[c][c];
            let recall = (truth > 0).then(|| hit as f64 / truth as f64);
            let precision = (predicted > 0).then(|| hit as f64 / predicted as f64);
            (recall, precision)
        })
        .collect()
}

/// Overall accuracy from a confusion matrix.
pub fn accuracy_from_confusion(confusion: &[Vec<usize>]) -> f64 {
    let total: usize = confusion.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    let hit: usize = (0..confusion.len()).map(|c| confusion[c][c]).sum();
    hit as f64 / total as f64
}

/// Convenience: argmax prediction for raw logits (re-exported for
/// callers that run their own forward).
pub fn predict_label(logits: &[f32]) -> usize {
    argmax(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{build_cnn, CnnConfig, Merging};
    use crate::tensor::Tensor;

    /// Two trivially separable classes: bright top-left vs bright
    /// bottom-right 16x16 images.
    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut img = vec![0.0f32; 16 * 16];
                for y in 0..8 {
                    for x in 0..8 {
                        let (yy, xx) = if label == 0 { (y, x) } else { (y + 8, x + 8) };
                        img[yy * 16 + xx] = 0.8 + 0.2 * rng.random::<f32>();
                    }
                }
                Sample {
                    channels: vec![Tensor::from_vec(&[16, 16], img)],
                    label,
                }
            })
            .collect()
    }

    fn toy_net(seed: u64) -> Cnn {
        build_cnn(
            Merging::Late,
            1,
            (16, 16),
            2,
            &CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed,
            },
        )
    }

    #[test]
    fn training_separates_toy_classes() {
        let samples = toy_samples(40, 1);
        let mut net = toy_net(2);
        let before = evaluate(&net, &samples);
        let report = train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let after = evaluate(&net, &samples);
        assert!(after >= 0.95, "accuracy only {after} (was {before})");
        // Loss decreases overall.
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples(16, 3);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = toy_net(5);
        let ra = train(&mut a, &samples, &cfg);
        let mut b = toy_net(5);
        let rb = train(&mut b, &samples, &cfg);
        assert_eq!(ra.loss_history.len(), rb.loss_history.len());
        for (x, y) in ra.loss_history.iter().zip(&rb.loss_history) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        assert_eq!(ra.epoch_train_acc, rb.epoch_train_acc);
    }

    #[test]
    fn batched_and_reference_training_agree() {
        // Same seed, same batches (including a final short batch:
        // 10 samples, batch 4) — the loss histories must line up step
        // by step within float tolerance.
        let samples = toy_samples(10, 21);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            lr: 2e-3,
            ..TrainConfig::default()
        };
        let mut a = toy_net(23);
        let mut b = a.clone();
        let ra = train(&mut a, &samples, &cfg);
        let rb = train_reference(&mut b, &samples, &cfg);
        assert_eq!(ra.loss_history.len(), rb.loss_history.len());
        for (i, (x, y)) in ra.loss_history.iter().zip(&rb.loss_history).enumerate() {
            assert!((x - y).abs() <= 1e-3, "step {i}: batched {x} vs ref {y}");
        }
        assert_eq!(ra.epoch_train_acc, rb.epoch_train_acc);
    }

    #[test]
    fn report_carries_throughput_and_step_stats() {
        let samples = toy_samples(12, 31);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut net = toy_net(33);
        let report = train(&mut net, &samples, &cfg);
        assert_eq!(report.epoch_samples_per_sec.len(), cfg.epochs);
        assert!(report.epoch_samples_per_sec.iter().all(|&s| s > 0.0));
        assert_eq!(report.step_time.steps, report.loss_history.len());
        assert!(report.step_time.min_ms <= report.step_time.mean_ms);
        assert!(report.step_time.mean_ms <= report.step_time.max_ms);
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut net = toy_net(1);
        let before = net.clone();
        let report = train(&mut net, &[], &TrainConfig::default());
        assert!(report.loss_history.is_empty());
        assert_eq!(report.step_time, StepTimeStats::default());
        assert_eq!(net, before);
    }

    #[test]
    fn evaluate_empty_slice_is_zero_not_nan() {
        let net = toy_net(1);
        let acc = evaluate(&net, &[]);
        assert_eq!(acc, 0.0);
        assert!(!acc.is_nan());
    }

    #[test]
    fn evaluate_single_sample_is_zero_or_one() {
        let net = toy_net(1);
        let samples = toy_samples(1, 2);
        let acc = evaluate(&net, &samples);
        assert!(acc == 0.0 || acc == 1.0, "got {acc}");
        // Consistent with the per-sample prediction path.
        let want = (net.predict(&samples[0].channels) == samples[0].label) as usize as f64;
        assert_eq!(acc, want);
    }

    #[test]
    fn evaluate_crosses_batch_boundaries_consistently() {
        // More samples than EVAL_BATCH: chunked batching must count
        // every sample exactly once.
        let samples = toy_samples(EVAL_BATCH + 9, 5);
        let net = toy_net(3);
        let acc = evaluate(&net, &samples);
        let per_sample = samples
            .iter()
            .filter(|s| net.predict(&s.channels) == s.label)
            .count() as f64
            / samples.len() as f64;
        assert!((acc - per_sample).abs() < 1e-12, "{acc} vs {per_sample}");
    }

    #[test]
    fn confusion_matrix_counts_match() {
        let samples = toy_samples(20, 7);
        let mut net = toy_net(9);
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 6,
                batch_size: 5,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let cm = confusion_matrix(&net, &samples, 2);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 20);
        let acc = accuracy_from_confusion(&cm);
        assert!((acc - evaluate(&net, &samples)).abs() < 1e-9);
    }

    #[test]
    fn recall_precision_handles_absent_class() {
        // Class 2 never appears and is never predicted.
        let cm = vec![vec![8, 2, 0], vec![1, 9, 0], vec![0, 0, 0]];
        let rp = recall_precision(&cm);
        assert_eq!(rp[0].0, Some(0.8));
        assert_eq!(rp[1].0, Some(0.9));
        assert_eq!(rp[2], (None, None));
        let p0 = rp[0].1.unwrap();
        assert!((p0 - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn predict_proba_is_a_distribution() {
        let net = toy_net(11);
        let s = &toy_samples(2, 13)[0];
        let p = predict_proba(&net, &s.channels);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn freeze_towers_keeps_tower_parameters() {
        let samples = toy_samples(12, 17);
        let mut net = toy_net(19);
        let tower_before = net.towers[0].clone();
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 2,
                batch_size: 4,
                freeze_towers: true,
                ..TrainConfig::default()
            },
        );
        assert_eq!(net.towers[0], tower_before);
    }

    #[test]
    fn frozen_batched_and_reference_paths_agree() {
        // Top evolvement through both paths: identical loss histories
        // and bit-identical towers.
        let samples = toy_samples(8, 41);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 3,
            freeze_towers: true,
            ..TrainConfig::default()
        };
        let mut a = toy_net(43);
        let mut b = a.clone();
        let ra = train(&mut a, &samples, &cfg);
        let rb = train_reference(&mut b, &samples, &cfg);
        for (x, y) in ra.loss_history.iter().zip(&rb.loss_history) {
            assert!((x - y).abs() <= 1e-3, "{x} vs {y}");
        }
        assert_eq!(a.towers, b.towers);
    }
}
