//! Softmax cross-entropy — the loss the paper's Figure 11 plots.

use crate::tensor::Tensor;

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy of softmax(logits) against a one-hot `label`.
///
/// Returns `(loss, d loss / d logits)` — the gradient of softmax +
/// cross-entropy fused, `p - onehot(label)`.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let p = softmax(logits.data());
    assert!(label < p.len(), "label {label} out of range {}", p.len());
    let loss = -(p[label].max(1e-12)).ln();
    let mut grad = p;
    grad[label] -= 1.0;
    (loss, Tensor::from_vec(logits.shape(), grad))
}

/// Fused batched softmax cross-entropy: the mean loss over the batch
/// plus the gradient of that mean w.r.t. every logit, in one pass.
///
/// `logits` holds `labels.len()` rows of `classes` logits (the layout
/// of [`crate::network::CnnBatchCache::logits_rows`]). `grad` is
/// overwritten (grown, never shrunk) with `[n, classes]` rows of
/// `(softmax(row) - onehot(label)) / n` — the gradient of the *mean*
/// loss, already scaled by `1/n`, so a batched training step hands it
/// straight to [`crate::network::Cnn::backward_batch`] and the
/// resulting batch-summed gradients come out as batch means.
pub fn softmax_cross_entropy_batch(
    logits: &[f32],
    classes: usize,
    labels: &[usize],
    grad: &mut Vec<f32>,
) -> f32 {
    let n = labels.len();
    assert!(n > 0, "batch loss needs at least one sample");
    assert_eq!(logits.len(), n * classes, "logits shape mismatch");
    if grad.len() < n * classes {
        grad.resize(n * classes, 0.0);
    }
    let inv = 1.0 / n as f32;
    let mut loss = 0.0f32;
    for (&label, (row, grow)) in labels
        .iter()
        .zip(logits.chunks(classes).zip(grad.chunks_mut(classes)))
    {
        assert!(label < classes, "label {label} out of range {classes}");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (g, &l) in grow.iter_mut().zip(row) {
            let e = (l - max).exp();
            *g = e;
            sum += e;
        }
        loss += -(grow[label] / sum).max(1e-12).ln();
        let s = inv / sum;
        for g in grow.iter_mut() {
            *g *= s;
        }
        grow[label] -= inv;
    }
    loss * inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(!softmax(&[1e4, -1e4]).iter().any(|v| v.is_nan()));
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(&[3], vec![20.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, 0);
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::from_vec(&[4], vec![0.0; 4]);
        let (loss, _) = softmax_cross_entropy(&logits, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[4], vec![0.5, -1.0, 2.0, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 1);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (softmax_cross_entropy(&lp, 1).0 - softmax_cross_entropy(&lm, 1).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "at {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 2.0, -1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 0);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let _ = softmax_cross_entropy(&logits, 5);
    }

    #[test]
    fn batch_loss_matches_per_sample_mean() {
        let rows = [
            (vec![0.5f32, -1.0, 2.0, 0.0], 1usize),
            (vec![3.0, 0.25, -0.5, 1.0], 0),
            (vec![-2.0, -2.0, -2.0, 5.5], 3),
        ];
        let n = rows.len();
        let logits: Vec<f32> = rows.iter().flat_map(|(r, _)| r.clone()).collect();
        let labels: Vec<usize> = rows.iter().map(|&(_, l)| l).collect();
        let mut grad = Vec::new();
        let loss = softmax_cross_entropy_batch(&logits, 4, &labels, &mut grad);
        let mut want_loss = 0.0f32;
        for (si, (r, l)) in rows.iter().enumerate() {
            let (pl, pg) = softmax_cross_entropy(&Tensor::from_vec(&[4], r.clone()), *l);
            want_loss += pl;
            for (g, w) in grad[si * 4..][..4].iter().zip(pg.data()) {
                // Batched gradient rows are pre-scaled by 1/n.
                assert!((g - w / n as f32).abs() < 1e-6, "{g} vs {}", w / n as f32);
            }
        }
        assert!((loss - want_loss / n as f32).abs() < 1e-6);
        // Each gradient row sums to zero, like the per-sample fused
        // gradient.
        for row in grad[..n * 4].chunks(4) {
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
    }

    #[test]
    fn batch_loss_reuses_a_larger_buffer() {
        // A stale oversized buffer must not leak into the result.
        let mut grad = vec![9.0f32; 64];
        let loss = softmax_cross_entropy_batch(&[0.0, 0.0], 2, &[1], &mut grad);
        assert!((loss - (2.0f32).ln()).abs() < 1e-6);
        assert!((grad[0] - 0.5).abs() < 1e-6 && (grad[1] + 0.5).abs() < 1e-6);
        assert_eq!(grad.len(), 64, "buffer must not shrink");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bad_label_panics() {
        let mut grad = Vec::new();
        let _ = softmax_cross_entropy_batch(&[0.0, 0.0], 2, &[2], &mut grad);
    }
}
