//! Softmax cross-entropy — the loss the paper's Figure 11 plots.

use crate::tensor::Tensor;

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy of softmax(logits) against a one-hot `label`.
///
/// Returns `(loss, d loss / d logits)` — the gradient of softmax +
/// cross-entropy fused, `p - onehot(label)`.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let p = softmax(logits.data());
    assert!(label < p.len(), "label {label} out of range {}", p.len());
    let loss = -(p[label].max(1e-12)).ln();
    let mut grad = p;
    grad[label] -= 1.0;
    (loss, Tensor::from_vec(logits.shape(), grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(!softmax(&[1e4, -1e4]).iter().any(|v| v.is_nan()));
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(&[3], vec![20.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, 0);
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::from_vec(&[4], vec![0.0; 4]);
        let (loss, _) = softmax_cross_entropy(&logits, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[4], vec![0.5, -1.0, 2.0, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 1);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (softmax_cross_entropy(&lp, 1).0 - softmax_cross_entropy(&lm, 1).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "at {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 2.0, -1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 0);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let _ = softmax_cross_entropy(&logits, 5);
    }
}
