//! Model persistence: versioned, checksummed JSON envelopes.
//!
//! The trained selector is a one-time artefact per platform (the paper
//! reports ~27 min of training), so models are saved and shipped; JSON
//! keeps the format debuggable and dependency-light. Every artefact —
//! model, checkpoint, selector — is wrapped in an [`Envelope`]:
//!
//! ```text
//! { "magic": "dnnspmv",
//!   "format_version": 2,        // bumped on layout changes
//!   "kind": "cnn-model",        // what the payload is
//!   "fingerprint": <u64>,       // structural/config hash
//!   "checksum": <u64>,          // FNV-1a over the payload bytes
//!   "payload": "<inner JSON>" }
//! ```
//!
//! Loading checks, in order: envelope JSON → kind tag → format version
//! → payload checksum → payload JSON → structural validation
//! ([`Cnn::validate`]) → fingerprint. Each failure maps to a distinct
//! [`NnError`] variant; no panic is reachable from file contents.
//! Writes to a path go through a temp file in the same directory and an
//! atomic rename, so a crash mid-write never leaves a truncated
//! artefact under the final name.

use crate::error::NnError;
use crate::network::Cnn;
use crate::structures::describe_structure;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Current envelope layout version.
///
/// History: v1 shipped with the 7-format universe; v2 widened the
/// sparse-format enum with SELL-C-σ and merge-path CSR, which changes
/// selector class heads and per-format tables, so v1 artefacts must be
/// retrained rather than silently reinterpreted.
pub const FORMAT_VERSION: u32 = 2;

/// Envelope kind tag for whole networks.
pub const KIND_MODEL: &str = "cnn-model";

/// FNV-1a 64-bit hash — the envelope checksum. Not cryptographic;
/// catches truncation and bit rot, which is all an integrity check on
/// a local artefact needs. Re-exported from the shared
/// `dnnspmv-fingerprint` crate so envelopes and the serving layer's
/// decision cache agree on one pinned digest.
pub use dnnspmv_fingerprint::fnv1a64;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Envelope {
    magic: String,
    format_version: u32,
    kind: String,
    fingerprint: u64,
    checksum: u64,
    payload: String,
}

/// Serialises `value` into an envelope of the given kind and writes it.
pub fn write_envelope<T: Serialize, W: Write>(
    kind: &str,
    fingerprint: u64,
    value: &T,
    w: W,
) -> Result<(), NnError> {
    let payload = serde_json::to_string(value).map_err(|e| NnError::Serde(e.to_string()))?;
    let env = Envelope {
        magic: "dnnspmv".into(),
        format_version: FORMAT_VERSION,
        kind: kind.into(),
        fingerprint,
        checksum: fnv1a64(payload.as_bytes()),
        payload,
    };
    serde_json::to_writer(w, &env).map_err(|e| NnError::Serde(e.to_string()))
}

/// Reads an envelope of the given kind, verifying magic, version and
/// checksum, and deserialises its payload. Returns the value and the
/// stored fingerprint (the caller decides what it must match).
pub fn read_envelope<T: Deserialize, R: Read>(kind: &str, r: R) -> Result<(T, u64), NnError> {
    let env: Envelope = serde_json::from_reader(r).map_err(|e| NnError::Serde(e.to_string()))?;
    if env.magic != "dnnspmv" {
        return Err(NnError::Serde(format!(
            "bad magic '{}' (not a dnnspmv artefact)",
            env.magic
        )));
    }
    // Reject both directions: newer artefacts use layouts this build
    // cannot parse, and older ones were trained against a different
    // format universe (class labels would silently shift meaning).
    if env.format_version != FORMAT_VERSION {
        return Err(NnError::FormatVersion {
            found: env.format_version,
            supported: FORMAT_VERSION,
        });
    }
    if env.kind != kind {
        return Err(NnError::WrongKind {
            found: env.kind,
            expected: kind.into(),
        });
    }
    let computed = fnv1a64(env.payload.as_bytes());
    if computed != env.checksum {
        return Err(NnError::ChecksumMismatch {
            stored: env.checksum,
            computed,
        });
    }
    let value = serde_json::from_str(&env.payload).map_err(|e| NnError::Serde(e.to_string()))?;
    Ok((value, env.fingerprint))
}

/// Writes an envelope to `path` atomically: serialise to `<path>.tmp`
/// in the same directory, fsync, then rename over the final name. A
/// crash mid-write leaves either the old artefact or a stray temp
/// file — never a truncated file under `path`.
pub fn write_envelope_atomic<T: Serialize, P: AsRef<Path>>(
    kind: &str,
    fingerprint: u64,
    value: &T,
    path: P,
) -> Result<(), NnError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    // Serialise up front: a serde failure never creates the temp file,
    // and the write below is a single buffer (so an interrupted write
    // — real or injected — is an honest prefix of the artefact).
    let mut bytes = Vec::new();
    write_envelope(kind, fingerprint, value, &mut bytes)?;
    let result = (|| -> Result<(), NnError> {
        let mut f = std::fs::File::create(&tmp)?;
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::ENVELOPE_WRITE) {
            // ENOSPC mid-buffer: some bytes land, then the device is
            // full. The truncated file only ever exists under the temp
            // name, which is exactly what the atomic protocol promises.
            f.write_all(&bytes[..bytes.len() / 2])?;
            return Err(NnError::StorageFull(format!(
                "chaos: short write to {}",
                tmp.display()
            )));
        }
        f.write_all(&bytes)?;
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::ENVELOPE_FSYNC,
            Err(NnError::Io(format!(
                "chaos: injected fsync failure on {}",
                tmp.display()
            )))
        );
        f.sync_all()?;
        drop(f);
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::ENVELOPE_RENAME,
            Err(NnError::Io(format!(
                "chaos: injected rename failure onto {}",
                path.display()
            )))
        );
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    result.inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

/// Reads an envelope of the given kind from a file path.
pub fn read_envelope_path<T: Deserialize, P: AsRef<Path>>(
    kind: &str,
    path: P,
) -> Result<(T, u64), NnError> {
    let f = std::fs::File::open(path)?;
    read_envelope(kind, std::io::BufReader::new(f))
}

/// Structural fingerprint of a network: its layer schedule plus input
/// contract. Stored in the model envelope and re-derived at load time,
/// so an envelope whose payload was swapped for a differently shaped
/// network is rejected even when both halves are individually valid.
pub fn model_fingerprint(net: &Cnn) -> u64 {
    let desc = format!(
        "{}|channels={}|shape={}x{}",
        describe_structure(net),
        net.num_channels,
        net.channel_shape.0,
        net.channel_shape.1
    );
    fnv1a64(desc.as_bytes())
}

/// Serialises a network to a writer as an enveloped JSON artefact.
pub fn save_model<W: Write>(net: &Cnn, w: W) -> Result<(), NnError> {
    write_envelope(KIND_MODEL, model_fingerprint(net), net, w)
}

/// Deserialises and validates a network from a reader.
///
/// Corrupted, truncated or shape-mangled files yield a typed `Err`;
/// a returned network has passed [`Cnn::validate`] and is safe to run
/// inference on without hitting the forward paths' shape asserts.
pub fn load_model<R: Read>(r: R) -> Result<Cnn, NnError> {
    let (net, fingerprint): (Cnn, u64) = read_envelope(KIND_MODEL, r)?;
    net.validate().map_err(NnError::InvalidModel)?;
    let derived = model_fingerprint(&net);
    if derived != fingerprint {
        return Err(NnError::ConfigMismatch(format!(
            "model fingerprint {fingerprint:#018x} does not match its structure ({derived:#018x})"
        )));
    }
    Ok(net)
}

/// Saves a network to a file path (atomic write-and-rename).
pub fn save_model_path<P: AsRef<Path>>(net: &Cnn, path: P) -> Result<(), NnError> {
    write_envelope_atomic(KIND_MODEL, model_fingerprint(net), net, path)
}

/// Loads a network from a file path.
pub fn load_model_path<P: AsRef<Path>>(path: P) -> Result<Cnn, NnError> {
    let f = std::fs::File::open(path)?;
    load_model(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{build_cnn, CnnConfig, Merging};
    use crate::tensor::Tensor;

    fn tiny() -> Cnn {
        build_cnn(
            Merging::Late,
            2,
            (16, 16),
            3,
            &CnnConfig {
                conv_channels: [2, 4, 4],
                hidden: 8,
                seed: 3,
            },
        )
    }

    #[test]
    fn round_trip_preserves_network_exactly() {
        let net = tiny();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let net = tiny();
        let channels: Vec<Tensor> = (0..2)
            .map(|c| {
                Tensor::from_vec(
                    &[16, 16],
                    (0..256).map(|i| ((i + c * 7) % 13) as f32 * 0.1).collect(),
                )
            })
            .collect();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert_eq!(back.forward(&channels), net.forward(&channels));
    }

    #[test]
    fn path_round_trip() {
        let net = tiny();
        let dir = std::env::temp_dir().join("dnnspmv_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("model.json");
        save_model_path(&net, &p).unwrap();
        let back = load_model_path(&p).unwrap();
        assert_eq!(back, net);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn garbage_input_errors_cleanly() {
        let e = load_model("not json at all".as_bytes()).unwrap_err();
        assert!(matches!(e, NnError::Serde(_)), "{e}");
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let net = tiny();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let e = load_model(&buf[..buf.len() / 2]).unwrap_err();
        assert!(matches!(e, NnError::Serde(_)), "{e}");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let net = tiny();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        // Flip a digit inside the payload without breaking the JSON.
        let s = String::from_utf8(buf).unwrap();
        let pos = s.find("0.0").expect("a zero bias value is serialised");
        let mangled = format!("{}9.9{}", &s[..pos], &s[pos + 3..]);
        let e = load_model(mangled.as_bytes()).unwrap_err();
        assert!(matches!(e, NnError::ChecksumMismatch { .. }), "{e}");
    }

    #[test]
    fn future_format_version_is_rejected() {
        let net = tiny();
        let payload = serde_json::to_string(&net).unwrap();
        let env = Envelope {
            magic: "dnnspmv".into(),
            format_version: FORMAT_VERSION + 1,
            kind: KIND_MODEL.into(),
            fingerprint: model_fingerprint(&net),
            checksum: fnv1a64(payload.as_bytes()),
            payload,
        };
        let buf = serde_json::to_string(&env).unwrap();
        let e = load_model(buf.as_bytes()).unwrap_err();
        assert!(matches!(e, NnError::FormatVersion { .. }), "{e}");
    }

    #[test]
    fn older_format_version_is_rejected() {
        // A v1-era artefact was trained against the 7-format universe;
        // its class labels would silently change meaning if loaded, so
        // it must fail typed, not parse.
        let net = tiny();
        let payload = serde_json::to_string(&net).unwrap();
        let env = Envelope {
            magic: "dnnspmv".into(),
            format_version: FORMAT_VERSION - 1,
            kind: KIND_MODEL.into(),
            fingerprint: model_fingerprint(&net),
            checksum: fnv1a64(payload.as_bytes()),
            payload,
        };
        let buf = serde_json::to_string(&env).unwrap();
        let e = load_model(buf.as_bytes()).unwrap_err();
        assert!(
            matches!(
                e,
                NnError::FormatVersion {
                    found: 1,
                    supported: FORMAT_VERSION
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let net = tiny();
        let payload = serde_json::to_string(&net).unwrap();
        let env = Envelope {
            magic: "dnnspmv".into(),
            format_version: FORMAT_VERSION,
            kind: "train-checkpoint".into(),
            fingerprint: model_fingerprint(&net),
            checksum: fnv1a64(payload.as_bytes()),
            payload,
        };
        let buf = serde_json::to_string(&env).unwrap();
        let e = load_model(buf.as_bytes()).unwrap_err();
        assert!(matches!(e, NnError::WrongKind { .. }), "{e}");
    }

    #[test]
    fn shape_mangled_model_errors_instead_of_panicking() {
        // Mangle the struct (declared channel count no longer matches
        // the tower layout), re-envelope with a *valid* checksum so the
        // corruption can only be caught by structural validation.
        let mut net = tiny();
        net.num_channels = 5;
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let e = load_model(buf.as_slice()).unwrap_err();
        assert!(matches!(e, NnError::InvalidModel(_)), "{e}");
    }

    #[test]
    fn tensor_shape_data_mismatch_is_caught_at_load() {
        // Rewrite a weight tensor's declared shape inside the payload
        // (a corruption serde's derived Deserialize accepts verbatim)
        // and recompute the checksum: only Cnn::validate can catch it.
        let net = tiny();
        let payload = serde_json::to_string(&net).unwrap();
        let needle = "\"shape\":[4,2,3,3]";
        assert!(payload.contains(needle), "expected a conv weight shape");
        let mangled = payload.replacen(needle, "\"shape\":[4,2,3,4]", 1);
        let env = Envelope {
            magic: "dnnspmv".into(),
            format_version: FORMAT_VERSION,
            kind: KIND_MODEL.into(),
            fingerprint: model_fingerprint(&net),
            checksum: fnv1a64(mangled.as_bytes()),
            payload: mangled,
        };
        let buf = serde_json::to_string(&env).unwrap();
        let e = load_model(buf.as_bytes()).unwrap_err();
        assert!(matches!(e, NnError::InvalidModel(_)), "{e}");
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
