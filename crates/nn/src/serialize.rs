//! Model persistence: JSON (de)serialisation of whole networks.
//!
//! The trained selector is a one-time artefact per platform (the paper
//! reports ~27 min of training), so models are saved and shipped;
//! JSON keeps the format debuggable and dependency-light.

use crate::network::Cnn;
use std::io::{Read, Write};
use std::path::Path;

/// Serialises a network to a writer as JSON.
pub fn save_model<W: Write>(net: &Cnn, w: W) -> Result<(), String> {
    serde_json::to_writer(w, net).map_err(|e| format!("serialise: {e}"))
}

/// Deserialises a network from a reader.
pub fn load_model<R: Read>(r: R) -> Result<Cnn, String> {
    serde_json::from_reader(r).map_err(|e| format!("deserialise: {e}"))
}

/// Saves a network to a file path.
pub fn save_model_path<P: AsRef<Path>>(net: &Cnn, path: P) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("create: {e}"))?;
    save_model(net, std::io::BufWriter::new(f))
}

/// Loads a network from a file path.
pub fn load_model_path<P: AsRef<Path>>(path: P) -> Result<Cnn, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open: {e}"))?;
    load_model(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{build_cnn, CnnConfig, Merging};
    use crate::tensor::Tensor;

    fn tiny() -> Cnn {
        build_cnn(
            Merging::Late,
            2,
            (16, 16),
            3,
            &CnnConfig {
                conv_channels: [2, 4, 4],
                hidden: 8,
                seed: 3,
            },
        )
    }

    #[test]
    fn round_trip_preserves_network_exactly() {
        let net = tiny();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let net = tiny();
        let channels: Vec<Tensor> = (0..2)
            .map(|c| {
                Tensor::from_vec(
                    &[16, 16],
                    (0..256).map(|i| ((i + c * 7) % 13) as f32 * 0.1).collect(),
                )
            })
            .collect();
        let mut buf = Vec::new();
        save_model(&net, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert_eq!(back.forward(&channels), net.forward(&channels));
    }

    #[test]
    fn path_round_trip() {
        let net = tiny();
        let dir = std::env::temp_dir().join("dnnspmv_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("model.json");
        save_model_path(&net, &p).unwrap();
        let back = load_model_path(&p).unwrap();
        assert_eq!(back, net);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn garbage_input_errors_cleanly() {
        let e = load_model("not json at all".as_bytes()).unwrap_err();
        assert!(e.contains("deserialise"));
    }
}
