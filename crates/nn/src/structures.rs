//! Network structure builders: the paper's late-merging CNN (Figures 7
//! and 10) and the early-merging baseline (Figure 6).
//!
//! Both share the same tower schedule — `CONV(3x3xC1, s1)-ReLU-POOL →
//! CONV(3x3xC2, s2)-ReLU-POOL → CONV(3x3xC3, s2)-ReLU-POOL → Flatten` —
//! and the same two-dense-layer head; they differ only in whether each
//! input channel gets its own tower (late) or all channels enter one
//! tower as a multi-channel image (early). On a 128x128 input the
//! default channel schedule reproduces Figure 10's activation shapes:
//! 64x64x16 → 16x16x32 → 4x4x64 → 1024.

use crate::layers::{Conv2d, Dense, Layer, MaxPool2d};
use crate::network::{Cnn, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Merge placement (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Merging {
    /// One tower per channel; features join at the head (Figure 7).
    Late,
    /// One tower over stacked channels (Figure 6).
    Early,
}

/// Structural hyper-parameters of the CNN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Filters of the three tower convolutions (Figure 10: 16, 32, 64).
    pub conv_channels: [usize; 3],
    /// Width of the hidden dense layer in the head.
    pub hidden: usize,
    /// Parameter initialisation seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self {
            conv_channels: [16, 32, 64],
            hidden: 64,
            seed: 0xC44,
        }
    }
}

/// Builds a tower for `in_ch` input channels over an `h x w` image.
fn tower(in_ch: usize, cfg: &CnnConfig, rng: &mut StdRng) -> Sequential {
    let [c1, c2, c3] = cfg.conv_channels;
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(in_ch, c1, 3, 1, rng)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { size: 2 }),
        Layer::Conv2d(Conv2d::new(c1, c2, 3, 2, rng)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { size: 2 }),
        Layer::Conv2d(Conv2d::new(c2, c3, 3, 2, rng)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { size: 2 }),
        Layer::Flatten,
    ])
}

/// Builds a CNN for `channels` input channels of shape `(h, w)` and
/// `classes` output formats, with the requested merge placement.
///
/// # Panics
/// Panics if the channel shape is too small to survive the three
/// stride/pool reductions (roughly `min(h, w) < 16`).
pub fn build_cnn(
    merging: Merging,
    channels: usize,
    channel_shape: (usize, usize),
    classes: usize,
    cfg: &CnnConfig,
) -> Cnn {
    assert!(channels >= 1 && classes >= 2, "need channels and classes");
    let (h, w) = channel_shape;
    assert!(
        h.min(w) >= 16,
        "channel shape {h}x{w} too small for the three-stage tower"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (towers, feat): (Vec<Sequential>, usize) = match merging {
        Merging::Late => {
            let ts: Vec<Sequential> = (0..channels).map(|_| tower(1, cfg, &mut rng)).collect();
            let f = ts
                .iter()
                .map(|t| t.out_shape(&[1, h, w]).iter().product::<usize>())
                .sum();
            (ts, f)
        }
        Merging::Early => {
            let t = tower(channels, cfg, &mut rng);
            let f = t.out_shape(&[channels, h, w]).iter().product();
            (vec![t], f)
        }
    };
    let head = Sequential::new(vec![
        Layer::Dense(Dense::new(feat, cfg.hidden, &mut rng)),
        Layer::Relu,
        Layer::Dense(Dense::new(cfg.hidden, classes, &mut rng)),
    ]);
    Cnn {
        towers,
        head,
        channel_shape,
        num_channels: channels,
    }
}

/// Pretty-prints the layer schedule with activation shapes, the textual
/// analogue of Figure 10.
pub fn describe_structure(net: &Cnn) -> String {
    let mut out = String::new();
    let (h, w) = net.channel_shape;
    let in_ch = if net.towers.len() == 1 {
        net.num_channels
    } else {
        1
    };
    for (ti, t) in net.towers.iter().enumerate() {
        out.push_str(&format!("tower {ti}: INPUT({h} x {w} x {in_ch})\n"));
        let mut shape = vec![in_ch, h, w];
        for l in &t.layers {
            shape = l.out_shape(&shape);
            let dims = shape
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x");
            out.push_str(&format!("  {:28} -> {dims}\n", l.describe()));
        }
    }
    out.push_str("merge: concat tower features\n");
    let mut shape = vec![net
        .towers
        .iter()
        .map(|t| {
            t.out_shape(&[
                if net.towers.len() == 1 {
                    net.num_channels
                } else {
                    1
                },
                h,
                w,
            ])
            .iter()
            .product::<usize>()
        })
        .sum::<usize>()];
    for l in &net.head.layers {
        shape = l.out_shape(&shape);
        out.push_str(&format!("  {:28} -> {}\n", l.describe(), shape[0]));
    }
    out.push_str("  Softmax\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_merging_has_one_tower_per_channel() {
        let net = build_cnn(Merging::Late, 2, (32, 32), 4, &CnnConfig::default());
        assert_eq!(net.towers.len(), 2);
        assert_eq!(net.num_channels, 2);
    }

    #[test]
    fn early_merging_has_single_tower() {
        let net = build_cnn(Merging::Early, 2, (32, 32), 4, &CnnConfig::default());
        assert_eq!(net.towers.len(), 1);
        // First conv consumes both channels.
        let Layer::Conv2d(c) = &net.towers[0].layers[0] else {
            panic!("first layer should be conv");
        };
        assert_eq!(c.in_ch, 2);
    }

    #[test]
    fn figure_10_shapes_on_128x128() {
        let net = build_cnn(Merging::Late, 2, (128, 128), 4, &CnnConfig::default());
        let t = &net.towers[0];
        // After conv1+pool: 16x64x64; conv2+pool: 32x16x16;
        // conv3+pool: 64x4x4; flatten: 1024 (Figure 10's waypoints).
        assert_eq!(t.out_shape(&[1, 128, 128]), vec![1024],);
        let partial = Sequential::new(t.layers[..3].to_vec());
        assert_eq!(partial.out_shape(&[1, 128, 128]), vec![16, 64, 64]);
        let partial = Sequential::new(t.layers[..6].to_vec());
        assert_eq!(partial.out_shape(&[1, 128, 128]), vec![32, 16, 16]);
        let partial = Sequential::new(t.layers[..9].to_vec());
        assert_eq!(partial.out_shape(&[1, 128, 128]), vec![64, 4, 4]);
    }

    #[test]
    fn rectangular_histogram_input_works() {
        // The paper's 128x50 histogram size must flow through.
        let net = build_cnn(Merging::Late, 2, (128, 50), 4, &CnnConfig::default());
        let out = net.towers[0].out_shape(&[1, 128, 50]);
        assert_eq!(out.len(), 1);
        assert!(out[0] > 0);
    }

    #[test]
    fn early_and_late_share_parameter_scale() {
        let late = build_cnn(Merging::Late, 2, (32, 32), 4, &CnnConfig::default());
        let early = build_cnn(Merging::Early, 2, (32, 32), 4, &CnnConfig::default());
        // Late has two towers of single-channel convs; early has one
        // tower with a 2-channel first conv. Counts are close but not
        // equal; both must be nonzero and same order of magnitude.
        let (lp, ep) = (late.num_params(), early.num_params());
        assert!(lp > 0 && ep > 0);
        assert!(lp < ep * 3 && ep < lp * 3, "lp={lp} ep={ep}");
    }

    #[test]
    fn seeded_build_is_deterministic() {
        let a = build_cnn(Merging::Late, 2, (32, 32), 4, &CnnConfig::default());
        let b = build_cnn(Merging::Late, 2, (32, 32), 4, &CnnConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn describe_mentions_all_stages() {
        let net = build_cnn(Merging::Late, 2, (64, 64), 4, &CnnConfig::default());
        let s = describe_structure(&net);
        assert!(s.contains("CONV(3x3x16, stride 1)"));
        assert!(s.contains("merge"));
        assert!(s.contains("Softmax"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_input_panics() {
        let _ = build_cnn(Merging::Late, 1, (8, 8), 2, &CnnConfig::default());
    }
}
