//! Hand-rolled CNN framework for sparse matrix format selection.
//!
//! The paper trains its selector with TensorFlow on a TITAN X; this
//! crate reimplements everything that experiment needs, from scratch,
//! on the CPU:
//!
//! * [`tensor`] — a minimal dense `f32` tensor.
//! * [`gemm`] — the compute core: cache-blocked parallel [`gemm::sgemm`]
//!   plus im2col/col2im lowering and reusable scratch buffers.
//! * [`layers`] — Conv2d / MaxPool2d / ReLU / Flatten / Dense with
//!   hand-derived backward passes (finite-difference-checked in tests);
//!   convolution and dense evaluate through the GEMM core, with the
//!   original naive loops kept as `*_reference` pins.
//! * [`network`] — [`network::Sequential`] stacks and the two-part
//!   [`network::Cnn`] expressing both the late-merging structure
//!   (Figures 7/10) and the early-merging baseline (Figure 6).
//! * [`structures`] — builders reproducing Figure 10's layer schedule.
//! * [`loss`], [`optimizer`], [`mod@train`] — softmax cross-entropy
//!   (per-sample and fused batched), SGD with momentum / Adam driven by
//!   one accumulated gradient set per step, and a mini-batch loop that
//!   trains through the batched GEMM forward/backward path (with the
//!   per-sample loop pinned as [`train::train_reference`]) and records
//!   the loss curves plotted in Figure 11.
//! * [`transfer`] — the cross-architecture migration strategies of
//!   Section 6 (continuous evolvement / top evolvement / from scratch).
//! * [`serialize`] — versioned, checksummed, atomically-written JSON
//!   persistence with load-time structural validation.
//! * [`checkpoint`], [`error`] — crash-safe epoch-boundary training
//!   checkpoints and the typed error they (and every other persistence
//!   path) surface failures through.

pub mod checkpoint;
pub mod error;
pub mod gemm;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod serialize;
pub mod structures;
pub mod tensor;
pub mod train;
pub mod transfer;

pub use checkpoint::{checkpoint_path, load_checkpoint, save_checkpoint, TrainCheckpoint};
pub use error::{is_storage_full, NnError};
pub use gemm::{
    current_gemm_threading, slots_probe_max, slots_probe_reset, with_forced_kernel,
    with_gemm_threading, GemmThreading, KernelVariant,
};
pub use layers::Layer;
pub use network::{Cnn, CnnBatchCache, CnnGrads, Sample, Sequential};
pub use optimizer::{Optimizer, OptimizerKind};
pub use structures::{build_cnn, describe_structure, CnnConfig, Merging};
pub use tensor::Tensor;
pub use train::{
    evaluate, train, train_reference, train_step, train_step_reference, train_with_hooks,
    BatchTrainState, DivergenceConfig, RecoveryStats, StepTimeStats, TrainConfig, TrainHooks,
    TrainReport,
};
pub use transfer::{migrate, Migration};
