//! Failpoint-driven storage-fault tests for model persistence and
//! checkpointing. Compiled only with the `chaos` feature; each test
//! arms the process-global registry with a deterministic schedule, so
//! they serialise on a shared mutex.
#![cfg(feature = "chaos")]

use std::sync::{Mutex, MutexGuard};

use dnnspmv_nn::error::NnError;
use dnnspmv_nn::network::Sample;
use dnnspmv_nn::serialize::{load_model_path, save_model_path};
use dnnspmv_nn::structures::{build_cnn, CnnConfig, Merging};
use dnnspmv_nn::tensor::Tensor;
use dnnspmv_nn::train::{train_with_hooks, TrainConfig, TrainHooks};
use dnnspmv_nn::{Cnn, GemmThreading};

static CHAOS: Mutex<()> = Mutex::new(());

/// Locks the registry for one test and arms it with `schedule`.
/// The guard must be held until after `dnnspmv_chaos::deactivate()`.
fn armed(seed: u64, schedule: &str) -> MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    dnnspmv_chaos::configure_str(seed, schedule).expect("schedule parses");
    guard
}

fn toy_net(seed: u64) -> Cnn {
    build_cnn(
        Merging::Late,
        1,
        (16, 16),
        2,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed,
        },
    )
}

fn toy_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let label = i % 2;
            let mut img = vec![0.0f32; 16 * 16];
            let off = if label == 0 { 0 } else { 8 };
            for y in 0..8 {
                for x in 0..8 {
                    img[(y + off) * 16 + (x + off)] = 1.0;
                }
            }
            Sample {
                channels: vec![Tensor::from_vec(&[16, 16], img)],
                label,
            }
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dnnspmv_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Files currently present in `dir` (names only, sorted).
fn listing(dir: &std::path::Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    v.sort();
    v
}

#[test]
fn short_write_is_storage_full_and_leaves_no_artefact() {
    let guard = armed(11, "nn.envelope.write=err");
    let dir = temp_dir("short_write");
    let path = dir.join("model.json");
    let net = toy_net(3);

    let err = save_model_path(&net, &path).unwrap_err();
    assert!(
        matches!(err, NnError::StorageFull(_)),
        "ENOSPC mid-write must surface as the typed StorageFull class, got {err:?}"
    );
    // The atomic protocol: the truncated file only ever existed under
    // the temp name, and the failure path removed even that.
    assert!(!path.exists(), "no final artefact after a failed write");
    assert_eq!(listing(&dir), Vec::<String>::new(), "no stray temp file");

    // Disarm and retry: the same path now round-trips.
    dnnspmv_chaos::deactivate();
    drop(guard);
    save_model_path(&net, &path).unwrap();
    let loaded = load_model_path(&path).unwrap();
    assert_eq!(loaded.num_channels, net.num_channels);
}

#[test]
fn fsync_and_rename_failures_leave_old_artefact_intact() {
    let dir = temp_dir("fsync_rename");
    let path = dir.join("model.json");
    let net = toy_net(5);
    // Establish a good artefact first, then fail each late stage once.
    save_model_path(&net, &path).unwrap();
    let good = std::fs::read(&path).unwrap();

    for schedule in ["nn.envelope.fsync=errx1", "nn.envelope.rename=errx1"] {
        let guard = armed(17, schedule);
        let err = save_model_path(&net, &path).unwrap_err();
        assert!(
            matches!(err, NnError::Io(_)),
            "{schedule}: late-stage failures are plain Io, got {err:?}"
        );
        dnnspmv_chaos::deactivate();
        drop(guard);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "{schedule}: previous artefact untouched by the failed rewrite"
        );
        assert_eq!(
            listing(&dir),
            vec!["model.json"],
            "{schedule}: temp removed"
        );
    }
}

#[test]
fn checkpoint_write_failure_does_not_abort_training() {
    let guard = armed(23, "nn.train.checkpoint=err");
    let dir = temp_dir("ck_fail");
    let failures = dnnspmv_obs::global().counter("train_checkpoint_failures_total", &[]);
    let before = failures.get();

    let mut net = toy_net(7);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 2e-3,
        seed: 9,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    let report = train_with_hooks(&mut net, &toy_samples(16), &cfg, TrainHooks::default())
        .expect("a full checkpoint device must not abort training");
    assert_eq!(report.epoch_train_acc.len(), 2, "both epochs completed");
    assert!(
        failures.get() >= before + 2,
        "every failed checkpoint write is counted"
    );
    assert_eq!(
        listing(&dir),
        Vec::<String>::new(),
        "no checkpoint (or temp) lands when every write fails"
    );
    dnnspmv_chaos::deactivate();
    drop(guard);
}

#[test]
fn checkpoint_failure_keeps_last_good_checkpoint() {
    // First epoch checkpoints cleanly; the second write fails. The
    // epoch-1 checkpoint must survive under the final name.
    let guard = armed(29, "nn.train.checkpoint=err@after(1)");
    let dir = temp_dir("ck_keep");
    let mut net = toy_net(13);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 2e-3,
        seed: 21,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    train_with_hooks(&mut net, &toy_samples(16), &cfg, TrainHooks::default()).unwrap();
    dnnspmv_chaos::deactivate();
    drop(guard);

    let ck_file = dnnspmv_nn::checkpoint_path(&dir);
    let (ck, _) = dnnspmv_nn::load_checkpoint(&ck_file).expect("last good checkpoint readable");
    assert_eq!(ck.epoch, 1, "epoch-1 checkpoint survived");
}

/// Threaded-GEMM smoke: the `nn.train.step` failpoint still fires and
/// the rollback machinery still owns recovery when every GEMM in the
/// step runs inside a rayon scope (TrainConfig `Fixed(4)`). Pins that
/// the chaos registry, the step guard and the threading policy — all
/// thread-local or process-global state — compose.
#[test]
fn train_step_failpoint_fires_under_threaded_gemm() {
    let guard = armed(37, "nn.train.step=err@after(4)x2");
    let mut net = toy_net(23);
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 8,
        lr: 2e-3,
        seed: 41,
        gemm_threading: GemmThreading::Fixed(4),
        ..TrainConfig::default()
    };
    let report = train_with_hooks(&mut net, &toy_samples(16), &cfg, TrainHooks::default())
        .expect("an injected divergent step must not abort training");
    assert!(
        report.recovery.divergent_steps >= 1,
        "failpoint never presented as a divergent step: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.rollbacks >= 1,
        "divergence under threading must still trigger rollback: {:?}",
        report.recovery
    );
    assert!(
        report.loss_history.iter().all(|l| l.is_finite()),
        "excised history must read as a clean run"
    );
    dnnspmv_chaos::deactivate();
    drop(guard);
}

#[test]
fn resume_read_failure_is_typed_not_a_panic() {
    // Write a real checkpoint, then inject a read failure on resume.
    let dir = temp_dir("resume_fail");
    let mut net = toy_net(19);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 2e-3,
        seed: 33,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    let samples = toy_samples(16);
    train_with_hooks(&mut net, &samples, &cfg, TrainHooks::default()).unwrap();
    let ck_file = dnnspmv_nn::checkpoint_path(&dir);
    assert!(ck_file.exists());

    let guard = armed(31, "nn.train.resume=err");
    let resume_cfg = TrainConfig {
        resume_from: Some(ck_file.to_string_lossy().into_owned()),
        checkpoint_dir: None,
        ..cfg
    };
    let mut net2 = toy_net(19);
    let err = train_with_hooks(&mut net2, &samples, &resume_cfg, TrainHooks::default())
        .expect_err("injected resume failure must surface");
    assert!(
        matches!(err, NnError::Io(_)),
        "resume read failure is a typed Io error, got {err:?}"
    );
    dnnspmv_chaos::deactivate();
    drop(guard);
}
