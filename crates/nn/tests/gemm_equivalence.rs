//! The threaded-GEMM acceptance battery: the parallel SIMD `sgemm`
//! must be *equivalent* (≤ 1e-4 against an f64 reference, any shape /
//! transpose / thread count), *deterministic* (bit-identical across
//! repeated runs AND across thread counts — the threading model
//! partitions rows without ever reordering any element's
//! accumulation), and *fully dispatched* (every micro-kernel variant
//! compiled on this host passes the same battery through the
//! test-only force hook, so no fallback path is dead untested code).

use dnnspmv_nn::gemm::{sgemm, Trans};
use dnnspmv_nn::{with_forced_kernel, with_gemm_threading, GemmThreading, KernelVariant};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Thread counts every suite runs at (satellite requirement: 1–8).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Reference triple loop in f64 (order-insensitive to tolerance).
#[allow(clippy::too_many_arguments)]
fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    beta: f32,
    c: &mut [f32],
) {
    let at = |i: usize, p: usize| match ta {
        Trans::No => a[i * k + p],
        Trans::Yes => a[p * m + i],
    };
    let bt = |p: usize, j: usize| match tb {
        Trans::No => b[p * n + j],
        Trans::Yes => b[j * k + p],
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(at(i, p)) * f64::from(bt(p, j));
            }
            let old = if beta == 0.0 {
                0.0
            } else {
                beta * c[i * n + j]
            };
            c[i * n + j] = old + alpha * acc as f32;
        }
    }
}

fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
}

fn trans(bit: usize) -> Trans {
    if bit == 0 {
        Trans::No
    } else {
        Trans::Yes
    }
}

/// One full check: threaded sgemm at every thread count vs the f64
/// reference (≤ 1e-4) and vs each other (bit-identical).
#[allow(clippy::too_many_arguments)]
fn check_case(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    beta: f32,
    ta: Trans,
    tb: Trans,
    rng: &mut StdRng,
) -> Result<(), String> {
    let a = rand_vec(rng, m * k);
    let b = rand_vec(rng, k * n);
    let c0 = rand_vec(rng, m * n);
    let mut want = c0.clone();
    naive_gemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut want);
    let mut baseline: Option<Vec<f32>> = None;
    for t in THREADS {
        let mut c = c0.clone();
        with_gemm_threading(GemmThreading::Fixed(t), || {
            sgemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut c)
        });
        for (i, (g, w)) in c.iter().zip(&want).enumerate() {
            if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
                return Err(format!(
                    "C({m}x{n}x{k},{ta:?},{tb:?},t{t})[{i}]: {g} vs {w}"
                ));
            }
        }
        match &baseline {
            None => baseline = Some(c),
            Some(base) => {
                if let Some(i) = (0..c.len()).find(|&i| c[i].to_bits() != base[i].to_bits()) {
                    return Err(format!(
                        "C({m}x{n}x{k},{ta:?},{tb:?}) differs bitwise between \
                         1 and {t} threads at [{i}]: {} vs {}",
                        base[i], c[i]
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomised equivalence: every shape/transpose draw must match
    /// the f64 reference at thread counts 1–8 and be bit-identical
    /// across them. `k` spans the dot (ta=No/tb=Yes), axpy (small k)
    /// and packed (k > 384) regimes; `m`/`n` cross the MR/NR=8 and
    /// MC=64 tile edges.
    #[test]
    fn sgemm_matches_reference_at_every_thread_count(
        (m, n, k) in (1usize..80, 1usize..90, 0usize..420),
        (tra, trb) in (0usize..2, 0usize..2),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = check_case(m, n, k, 1.0, 0.0, trans(tra), trans(trb), &mut rng) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// Same property with accumulation (`beta = 1`) and scaling, so
    /// the once-only alpha/beta application holds under threading too.
    #[test]
    fn sgemm_alpha_beta_hold_at_every_thread_count(
        (m, n, k) in (1usize..40, 1usize..50, 1usize..300),
        (tra, trb) in (0usize..2, 0usize..2),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = check_case(m, n, k, 0.75, 1.0, trans(tra), trans(trb), &mut rng) {
            return Err(TestCaseError::fail(e));
        }
    }
}

#[test]
fn degenerate_and_tile_edge_shapes_hold_at_every_thread_count() {
    // k = 0 (pure beta scaling), single-row/column outputs, exact
    // tile multiples and every off-by-one around MR/NR (8), MC (64),
    // KC (256), NC (1024) and the SMALL_K (384) regime switch.
    let cases = [
        (1usize, 1usize, 1usize),
        (1, 1, 0),
        (5, 9, 0),
        (1, 17, 40),
        (17, 1, 40),
        (1, 1, 400),
        (7, 9, 8),
        (8, 8, 8),
        (9, 7, 9),
        (63, 9, 100),
        (64, 9, 100),
        (65, 9, 100),
        (16, 16, 255),
        (16, 16, 256),
        (16, 16, 257),
        (9, 1023, 390),
        (9, 1024, 390),
        (9, 1025, 390),
        (12, 20, 383),
        (12, 20, 384),
        (12, 20, 385),
    ];
    let mut rng = StdRng::seed_from_u64(1234);
    for &(m, n, k) in &cases {
        for (tra, trb) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            check_case(m, n, k, 1.0, 0.5, trans(tra), trans(trb), &mut rng)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical_at_a_fixed_thread_count() {
    let mut rng = StdRng::seed_from_u64(77);
    // One shape per parallel regime: dot (No/Yes small C), axpy
    // (small k, No), packed (large k).
    let shapes = [
        (20usize, 30usize, 500usize, Trans::No, Trans::Yes),
        (33, 61, 72, Trans::No, Trans::No),
        (65, 70, 400, Trans::No, Trans::No),
    ];
    for &(m, n, k, ta, tb) in &shapes {
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        for t in THREADS {
            let mut runs = (0..3).map(|_| {
                let mut c = vec![0.0f32; m * n];
                with_gemm_threading(GemmThreading::Fixed(t), || {
                    sgemm(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c)
                });
                c
            });
            let first = runs.next().expect("three runs");
            for (run, c) in runs.enumerate() {
                assert!(
                    c.iter()
                        .zip(&first)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "run {} at {t} threads differs bitwise ({m}x{n}x{k})",
                    run + 2
                );
            }
        }
    }
}

/// The documented cross-thread-count statement: *nothing* changes.
/// The span partition only decides which task computes which rows;
/// each element's reduction order is fixed by the blocking constants,
/// so outputs are bit-identical at 1, 2, 4 and 8 threads (this is
/// also asserted inside every randomized case above).
#[test]
fn outputs_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(99);
    let (m, n, k) = (66, 130, 413); // packed regime, ragged everywhere
    let a = rand_vec(&mut rng, m * k);
    let b = rand_vec(&mut rng, k * n);
    let reference = {
        let mut c = vec![0.0f32; m * n];
        with_gemm_threading(GemmThreading::Serial, || {
            sgemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
        });
        c
    };
    for t in [2usize, 3, 4, 5, 8, 16] {
        let mut c = vec![0.0f32; m * n];
        with_gemm_threading(GemmThreading::Fixed(t), || {
            sgemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
        });
        assert!(
            c.iter()
                .zip(&reference)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{t}-thread output differs bitwise from serial"
        );
    }
}

/// Dispatch battery: every micro-kernel variant compiled on this host
/// (and executable on its CPU) runs the equivalence + determinism
/// suite through the force-select hook. The portable fallback is
/// exercised even on hosts whose detection would always pick SIMD.
#[test]
fn every_compiled_kernel_variant_passes_the_equivalence_suite() {
    let mut tested = 0;
    for &variant in KernelVariant::compiled() {
        if !variant.available() {
            continue;
        }
        tested += 1;
        with_forced_kernel(variant, || {
            let mut rng = StdRng::seed_from_u64(0xD15F * (tested as u64));
            // Packed-regime shapes only: the micro-kernel is the
            // packed path's inner loop (other regimes never reach it).
            for &(m, n, k) in &[
                (8usize, 8usize, 400usize),
                (13, 17, 400),
                (65, 9, 513),
                (70, 30, 390),
                (3, 1030, 385),
            ] {
                for (tra, trb) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    check_case(m, n, k, 1.0, 0.0, trans(tra), trans(trb), &mut rng)
                        .unwrap_or_else(|e| panic!("[{}] {e}", variant.name()));
                }
            }
        });
    }
    assert!(tested >= 1, "no kernel variant was testable");
    #[cfg(target_arch = "x86_64")]
    if KernelVariant::Avx2Fma.available() {
        assert!(tested >= 2, "AVX2 available but not tested");
    }
}

/// Forced variants agree with each other within float tolerance (they
/// may differ in write-back rounding, never in math).
#[test]
fn kernel_variants_agree_within_tolerance() {
    let mut rng = StdRng::seed_from_u64(31);
    let (m, n, k) = (30, 40, 450);
    let a = rand_vec(&mut rng, m * k);
    let b = rand_vec(&mut rng, k * n);
    let mut outputs = Vec::new();
    for &variant in KernelVariant::compiled() {
        if !variant.available() {
            continue;
        }
        let mut c = vec![0.0f32; m * n];
        with_forced_kernel(variant, || {
            sgemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
        });
        outputs.push((variant, c));
    }
    let (base_v, base) = &outputs[0];
    for (v, c) in &outputs[1..] {
        for (i, (x, y)) in c.iter().zip(base).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "{} vs {} differ at [{i}]: {x} vs {y}",
                v.name(),
                base_v.name()
            );
        }
    }
}
