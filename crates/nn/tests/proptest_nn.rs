//! Property tests for the CNN framework: gradient correctness on random
//! layer configurations, loss invariants, optimiser behaviour.

use dnnspmv_nn::layers::{Conv2d, Dense, Layer, MaxPool2d};
use dnnspmv_nn::loss::{softmax, softmax_cross_entropy};
use dnnspmv_nn::tensor::Tensor;
use dnnspmv_nn::{with_gemm_threading, GemmThreading};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_diff_check(layer: &Layer, in_shape: &[usize], seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand_distr::{Distribution, Normal};
    let d = Normal::new(0.0, 1.0).expect("valid");
    let vol: usize = in_shape.iter().product();
    let x = Tensor::from_vec(
        in_shape,
        (0..vol).map(|_| d.sample(&mut rng) as f32).collect(),
    );
    let out = layer.forward(&x);
    let w: Vec<f32> = (0..out.len()).map(|_| d.sample(&mut rng) as f32).collect();
    let gout = Tensor::from_vec(out.shape(), w.clone());
    let loss = |x: &Tensor| -> f64 {
        layer
            .forward(x)
            .data()
            .iter()
            .zip(&w)
            .map(|(&o, &wi)| (o * wi) as f64)
            .sum()
    };
    let (gin, _) = layer.backward(&x, &gout);
    let eps = 1e-3f32;
    let mut bad = 0;
    let mut checked = 0;
    for idx in (0..x.len()).step_by((x.len() / 9).max(1)) {
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let num = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
        let ana = gin.data()[idx] as f64;
        checked += 1;
        if (num - ana).abs() > 2e-2 * (1.0 + num.abs().max(ana.abs())) {
            bad += 1;
        }
    }
    // Non-smooth layers (pool) may disagree at kinks on a few points.
    if bad * 5 > checked {
        return Err(format!("{bad}/{checked} gradient checks failed"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conv_gradients_hold_for_random_configs(
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        stride in 1usize..3,
        hw in 5usize..9,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Layer::Conv2d(Conv2d::new(in_ch, out_ch, 3, stride, &mut rng));
        finite_diff_check(&layer, &[in_ch, hw, hw], seed).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn dense_gradients_hold_for_random_configs(
        din in 1usize..12,
        dout in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Layer::Dense(Dense::new(din, dout, &mut rng));
        finite_diff_check(&layer, &[din], seed).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn pool_gradients_hold(c in 1usize..3, hw in 4usize..9, seed in 0u64..500) {
        let layer = Layer::MaxPool2d(MaxPool2d { size: 2 });
        finite_diff_check(&layer, &[c, hw, hw], seed).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-20.0f32..20.0, 1..10)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Shift invariance.
        let shifted: Vec<f32> = logits.iter().map(|v| v + 7.5).collect();
        let q = softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grad_sums_zero(
        logits in proptest::collection::vec(-10.0f32..10.0, 2..8),
        label_pick in 0usize..100,
    ) {
        let label = label_pick % logits.len();
        let t = Tensor::from_vec(&[logits.len()], logits.clone());
        let (loss, grad) = softmax_cross_entropy(&t, label);
        prop_assert!(loss >= 0.0);
        let s: f32 = grad.data().iter().sum();
        prop_assert!(s.abs() < 1e-4);
        // Gradient for the true class is negative (push it up).
        prop_assert!(grad.data()[label] <= 0.0);
    }

    #[test]
    fn layer_out_shapes_match_forward(
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        stride in 1usize..3,
        hw in 5usize..10,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = [
            Layer::Conv2d(Conv2d::new(in_ch, out_ch, 3, stride, &mut rng)),
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Relu,
            Layer::Flatten,
        ];
        for l in &layers {
            let shape = vec![in_ch, hw, hw];
            let out = l.forward(&Tensor::zeros(&shape));
            let expect = l.out_shape(&shape);
            prop_assert_eq!(out.shape(), expect.as_slice());
        }
    }
}

/// Satellite re-run: layer finite-difference gradients hold when every
/// GEMM inside forward/backward goes through the threaded path. Fixed
/// thread counts above the pool size still partition work, so this
/// exercises multi-span dispatch even on a single-core runner.
#[test]
fn layer_gradients_hold_under_threaded_gemm() {
    with_gemm_threading(GemmThreading::Fixed(4), || {
        let mut rng = StdRng::seed_from_u64(1313);
        let conv = Layer::Conv2d(Conv2d::new(2, 3, 3, 1, &mut rng));
        finite_diff_check(&conv, &[2, 8, 8], 1313).unwrap();
        let dense = Layer::Dense(Dense::new(24, 7, &mut rng));
        finite_diff_check(&dense, &[24], 14).unwrap();
        let pool = Layer::MaxPool2d(MaxPool2d { size: 2 });
        finite_diff_check(&pool, &[2, 8, 8], 15).unwrap();
    });
}

/// Random normal tensor for the equivalence tests.
fn randn(shape: &[usize], rng: &mut StdRng) -> Tensor {
    use rand_distr::{Distribution, Normal};
    let d = Normal::new(0.0, 1.0).expect("valid");
    let vol: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..vol).map(|_| d.sample(rng) as f32).collect())
}

fn close(got: &Tensor, want: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
            "element {}: {} vs {}",
            i,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The GEMM-backed Conv2d forward/backward must agree with the
    // naive reference loops across random shapes, strides and
    // paddings (pad is set directly; `new` only produces "same" pads).
    #[test]
    fn conv_gemm_equals_naive_for_random_geometry(
        in_ch in 1usize..4,
        out_ch in 1usize..5,
        ksize in 1usize..5,
        stride in 1usize..4,
        pad in 0usize..3,
        h in 5usize..11,
        w in 5usize..11,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_ch, out_ch, ksize, stride, &mut rng);
        conv.pad = pad; // exercise non-"same" paddings too
        prop_assume!(h + 2 * pad >= ksize && w + 2 * pad >= ksize);
        let x = randn(&[in_ch, h, w], &mut rng);
        let fwd = conv.forward(&x);
        close(&fwd, &conv.forward_reference(&x))?;
        let gout = randn(fwd.shape(), &mut rng);
        let (gin, gparams) = conv.backward(&x, &gout);
        let (gin_ref, gparams_ref) = conv.backward_reference(&x, &gout);
        close(&gin, &gin_ref)?;
        close(&gparams[0], &gparams_ref[0])?;
        close(&gparams[1], &gparams_ref[1])?;
    }

    // Same pin for Dense: matvec/rank-1 GEMM paths vs naive loops.
    #[test]
    fn dense_gemm_equals_naive_for_random_widths(
        in_dim in 1usize..80,
        out_dim in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = Dense::new(in_dim, out_dim, &mut rng);
        let x = randn(&[in_dim], &mut rng);
        close(&dense.forward(&x), &dense.forward_reference(&x))?;
        let gout = randn(&[out_dim], &mut rng);
        let (gin, gparams) = dense.backward(&x, &gout);
        let (gin_ref, gparams_ref) = dense.backward_reference(&x, &gout);
        close(&gin, &gin_ref)?;
        close(&gparams[0], &gparams_ref[0])?;
        close(&gparams[1], &gparams_ref[1])?;
    }

    // Batched inference must agree with per-sample inference for any
    // batch size, including sizes that leave ragged GEMM tiles.
    #[test]
    fn batched_layers_equal_per_sample_forward(
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        stride in 1usize..3,
        hw in 5usize..9,
        batch in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(in_ch, out_ch, 3, stride, &mut rng);
        let xs: Vec<Tensor> = (0..batch).map(|_| randn(&[in_ch, hw, hw], &mut rng)).collect();
        for (x, got) in xs.iter().zip(conv.forward_batch(&xs)) {
            close(&got, &conv.forward(x))?;
        }
        let dense = Dense::new(in_ch * hw * hw, out_ch + 1, &mut rng);
        let vs: Vec<Tensor> = (0..batch).map(|_| randn(&[in_ch * hw * hw], &mut rng)).collect();
        for (v, got) in vs.iter().zip(dense.forward_batch(&vs)) {
            close(&got, &dense.forward(v))?;
        }
    }
}
