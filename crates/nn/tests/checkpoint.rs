//! Crash-safety tests: checkpoint round trips and kill-and-resume
//! equivalence with an uninterrupted run.

use dnnspmv_nn::checkpoint::{
    checkpoint_path, load_checkpoint, save_checkpoint, train_fingerprint, TrainCheckpoint,
};
use dnnspmv_nn::error::NnError;
use dnnspmv_nn::network::Sample;
use dnnspmv_nn::structures::{build_cnn, CnnConfig, Merging};
use dnnspmv_nn::tensor::Tensor;
use dnnspmv_nn::train::{train_with_hooks, TrainConfig, TrainHooks};
use dnnspmv_nn::{Cnn, GemmThreading, Optimizer, OptimizerKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let label = i % 2;
            let mut img = vec![0.0f32; 16 * 16];
            for y in 0..8 {
                for x in 0..8 {
                    let (yy, xx) = if label == 0 { (y, x) } else { (y + 8, x + 8) };
                    img[yy * 16 + xx] = 0.8 + 0.2 * rng.random::<f32>();
                }
            }
            Sample {
                channels: vec![Tensor::from_vec(&[16, 16], img)],
                label,
            }
        })
        .collect()
}

fn toy_net(seed: u64) -> Cnn {
    build_cnn(
        Merging::Late,
        1,
        (16, 16),
        2,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed,
        },
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dnnspmv_ck_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kill_and_resume_matches_uninterrupted_run() {
    let samples = toy_samples(24, 11);
    let dir = temp_dir("resume");
    let base = TrainConfig {
        epochs: 6,
        batch_size: 8,
        lr: 2e-3,
        seed: 5,
        ..TrainConfig::default()
    };

    // Uninterrupted reference run.
    let mut full_net = toy_net(9);
    let full = train_with_hooks(&mut full_net, &samples, &base, TrainHooks::default()).unwrap();

    // Same run, killed after epoch 2 (checkpoint already on disk)...
    let mut killed_net = toy_net(9);
    let cfg_kill = TrainConfig {
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..base.clone()
    };
    let partial = train_with_hooks(
        &mut killed_net,
        &samples,
        &cfg_kill,
        TrainHooks {
            grad_hook: None,
            abort_after_epoch: Some(2),
        },
    )
    .unwrap();
    assert_eq!(partial.epoch_train_acc.len(), 2, "aborted after 2 epochs");

    // ...then resumed in a fresh process image (fresh net, fresh state).
    let mut resumed_net = toy_net(9);
    let cfg_resume = TrainConfig {
        resume_from: Some(checkpoint_path(&dir).to_string_lossy().into_owned()),
        ..base.clone()
    };
    let resumed = train_with_hooks(
        &mut resumed_net,
        &samples,
        &cfg_resume,
        TrainHooks::default(),
    )
    .unwrap();

    assert_eq!(resumed.recovery.resumed_at_epoch, Some(2));
    assert_eq!(resumed.loss_history.len(), full.loss_history.len());
    for (i, (r, f)) in resumed
        .loss_history
        .iter()
        .zip(&full.loss_history)
        .enumerate()
    {
        assert!(
            (r - f).abs() <= 1e-4,
            "step {i}: resumed loss {r} vs uninterrupted {f}"
        );
    }
    assert_eq!(resumed.epoch_train_acc, full.epoch_train_acc);
    // The resumed network is the uninterrupted network, bit for bit:
    // optimiser state and shuffle order both survived the kill.
    assert_eq!(resumed_net, full_net);

    std::fs::remove_dir_all(&dir).ok();
}

/// The PR 3 crash-safety guarantee re-pinned under the threaded GEMM
/// path: at 4 threads the kill-and-resume run still reproduces the
/// uninterrupted run *bit for bit*, and a run resumed at a different
/// thread count matches too — the threading policy partitions rows
/// without changing any element's accumulation order, and it is
/// deliberately excluded from the checkpoint fingerprint.
#[test]
fn kill_and_resume_is_bit_identical_under_threaded_gemm() {
    let samples = toy_samples(24, 11);
    let dir = temp_dir("resume_threaded");
    let base = TrainConfig {
        epochs: 6,
        batch_size: 8,
        lr: 2e-3,
        seed: 5,
        gemm_threading: GemmThreading::Fixed(4),
        ..TrainConfig::default()
    };

    let mut full_net = toy_net(9);
    let full = train_with_hooks(&mut full_net, &samples, &base, TrainHooks::default()).unwrap();

    let mut killed_net = toy_net(9);
    let cfg_kill = TrainConfig {
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..base.clone()
    };
    train_with_hooks(
        &mut killed_net,
        &samples,
        &cfg_kill,
        TrainHooks {
            grad_hook: None,
            abort_after_epoch: Some(3),
        },
    )
    .unwrap();

    // Resume at a *different* thread count: still bit-identical.
    let mut resumed_net = toy_net(9);
    let cfg_resume = TrainConfig {
        resume_from: Some(checkpoint_path(&dir).to_string_lossy().into_owned()),
        gemm_threading: GemmThreading::Fixed(2),
        ..base.clone()
    };
    let resumed = train_with_hooks(
        &mut resumed_net,
        &samples,
        &cfg_resume,
        TrainHooks::default(),
    )
    .unwrap();

    assert_eq!(resumed.recovery.resumed_at_epoch, Some(3));
    assert_eq!(resumed.loss_history.len(), full.loss_history.len());
    for (i, (r, f)) in resumed
        .loss_history
        .iter()
        .zip(&full.loss_history)
        .enumerate()
    {
        assert_eq!(
            r.to_bits(),
            f.to_bits(),
            "step {i}: resumed loss {r} != uninterrupted {f} (threaded path)"
        );
    }
    assert_eq!(resumed_net, full_net, "resumed network must match bitwise");

    // And the whole threaded run equals a serial run of the same seed.
    let mut serial_net = toy_net(9);
    let serial_cfg = TrainConfig {
        gemm_threading: GemmThreading::Serial,
        ..base.clone()
    };
    let serial = train_with_hooks(
        &mut serial_net,
        &samples,
        &serial_cfg,
        TrainHooks::default(),
    )
    .unwrap();
    assert_eq!(serial_net, full_net, "thread count changed training bits");
    for (i, (s, f)) in serial
        .loss_history
        .iter()
        .zip(&full.loss_history)
        .enumerate()
    {
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "loss step {i} differs serial vs 4t"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_mismatched_run_configuration() {
    let samples = toy_samples(16, 3);
    let dir = temp_dir("mismatch");
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        seed: 21,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    let mut net = toy_net(1);
    train_with_hooks(&mut net, &samples, &cfg, TrainHooks::default()).unwrap();

    let resume_path = checkpoint_path(&dir).to_string_lossy().into_owned();
    // Different shuffle seed → different batch sequence → refuse.
    let bad = TrainConfig {
        seed: 22,
        checkpoint_dir: None,
        resume_from: Some(resume_path.clone()),
        ..cfg.clone()
    };
    let mut fresh = toy_net(1);
    let err = train_with_hooks(&mut fresh, &samples, &bad, TrainHooks::default()).unwrap_err();
    assert!(matches!(err, NnError::ConfigMismatch(_)), "{err}");

    // Different dataset size → refuse.
    let bad_data = TrainConfig {
        checkpoint_dir: None,
        resume_from: Some(resume_path),
        ..cfg.clone()
    };
    let mut fresh = toy_net(1);
    let err = train_with_hooks(
        &mut fresh,
        &toy_samples(12, 3),
        &bad_data,
        TrainHooks::default(),
    )
    .unwrap_err();
    assert!(matches!(err, NnError::ConfigMismatch(_)), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoint_file_is_a_typed_error() {
    let samples = toy_samples(16, 3);
    let dir = temp_dir("corrupt");
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    let mut net = toy_net(1);
    train_with_hooks(&mut net, &samples, &cfg, TrainHooks::default()).unwrap();

    let path = checkpoint_path(&dir);
    let text = std::fs::read_to_string(&path).unwrap();
    // Truncate the file mid-JSON.
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let err = load_checkpoint(&path).unwrap_err();
    assert!(matches!(err, NnError::Serde(_)), "{err}");

    // Restore and flip payload bytes: checksum must catch it.
    let pos = text.find("loss_history").unwrap();
    let mangled = text.replacen("loss_history", "loss_hist0ry", 1);
    assert_ne!(pos, 0);
    std::fs::write(&path, mangled).unwrap();
    let err = load_checkpoint(&path).unwrap_err();
    assert!(matches!(err, NnError::ChecksumMismatch { .. }), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Save → load round trip is exact for arbitrary mid-training
    /// states: epoch counters, optimiser moments, loss history and
    /// wall-clock accumulators all survive the envelope bit-for-bit.
    #[test]
    fn checkpoint_round_trip_is_exact(
        epoch in 1usize..5,
        steps in 1usize..40,
        net_seed in 0u64..1000,
        lr_milli in 1u32..50,
    ) {
        let mut net = toy_net(net_seed);
        let opt = Optimizer::new(&mut net, OptimizerKind::adam(), lr_milli as f32 * 1e-3, false);
        let mut rng = StdRng::seed_from_u64(net_seed ^ 0x5eed);
        let report = dnnspmv_nn::TrainReport {
            loss_history: (0..steps).map(|_| rng.random::<f32>()).collect(),
            epoch_train_acc: (0..epoch).map(|_| rng.random::<f64>()).collect(),
            epoch_samples_per_sec: (0..epoch).map(|_| 1.0 + rng.random::<f64>()).collect(),
            step_time: Default::default(),
            recovery: Default::default(),
        };
        let ck = TrainCheckpoint {
            epoch,
            step_counter: steps as u64,
            samples_len: 24,
            net: net.clone(),
            opt,
            report,
            time_steps: steps,
            total_s: 0.25 * steps as f64,
            min_s: 1e-3,
            max_s: 0.5,
        };
        let cfg = TrainConfig { seed: net_seed, ..TrainConfig::default() };
        let fp = train_fingerprint(&cfg, &net, 24);
        let dir = temp_dir("prop");
        let path = dir.join(format!("ck_{net_seed}_{epoch}_{steps}.json"));
        save_checkpoint(&ck, fp, &path).unwrap();
        let (back, stored_fp) = load_checkpoint(&path).unwrap();
        prop_assert_eq!(stored_fp, fp);
        prop_assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }
}
