//! Equivalence and gradient-correctness tests for the batched training
//! path: `forward_batch_cached` + `softmax_cross_entropy_batch` +
//! `backward_batch` against the per-sample reference, plus a
//! finite-difference check of parameter gradients through the fused
//! batched loss.

use dnnspmv_nn::layers::{Conv2d, Dense, Layer, MaxPool2d};
use dnnspmv_nn::loss::{softmax_cross_entropy, softmax_cross_entropy_batch};
use dnnspmv_nn::network::CnnBatchCache;
use dnnspmv_nn::network::Sample;
use dnnspmv_nn::tensor::Tensor;
use dnnspmv_nn::{
    train, train_reference, with_gemm_threading, Cnn, CnnGrads, GemmThreading, Sequential,
    TrainConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLASSES: usize = 3;
const HW: usize = 8;

/// Small Cnn on 8x8 channels (below `build_cnn`'s minimum input size,
/// so assembled directly): one tower per channel when `late`, one
/// tower consuming all channels otherwise, plus a Dense-ReLU-Dense
/// head.
fn tiny_cnn(num_channels: usize, late: bool, seed: u64) -> Cnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let tower = |in_ch: usize, rng: &mut StdRng| {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(in_ch, 2, 3, 1, rng)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Flatten,
        ])
    };
    let ntowers = if late { num_channels } else { 1 };
    let towers: Vec<Sequential> = (0..ntowers)
        .map(|_| tower(if late { 1 } else { num_channels }, &mut rng))
        .collect();
    let feat = ntowers * 2 * (HW / 2) * (HW / 2);
    let head = Sequential::new(vec![
        Layer::Dense(Dense::new(feat, 8, &mut rng)),
        Layer::Relu,
        Layer::Dense(Dense::new(8, CLASSES, &mut rng)),
    ]);
    Cnn {
        towers,
        head,
        channel_shape: (HW, HW),
        num_channels,
    }
}

fn randn_channels(num_channels: usize, rng: &mut StdRng) -> Vec<Tensor> {
    use rand_distr::{Distribution, Normal};
    let d = Normal::new(0.0, 1.0).expect("valid");
    (0..num_channels)
        .map(|_| {
            Tensor::from_vec(
                &[HW, HW],
                (0..HW * HW).map(|_| d.sample(rng) as f32).collect(),
            )
        })
        .collect()
}

/// Batch-mean gradients through the batched path.
fn batched_grads(net: &Cnn, batch: &[Vec<Tensor>], labels: &[usize]) -> (f32, CnnGrads) {
    let refs: Vec<&[Tensor]> = batch.iter().map(|c| c.as_slice()).collect();
    let mut cache = CnnBatchCache::default();
    net.forward_batch_cached(&refs, &mut cache);
    let mut glogits = Vec::new();
    let (logits, classes) = cache.logits_rows();
    let loss = softmax_cross_entropy_batch(logits, classes, labels, &mut glogits);
    let mut grads = net.zero_grads();
    net.backward_batch(
        &mut cache,
        &glogits[..batch.len() * classes],
        false,
        &mut grads,
    );
    (loss, grads)
}

/// Batch-mean gradients through the per-sample reference path.
fn reference_grads(net: &Cnn, batch: &[Vec<Tensor>], labels: &[usize]) -> (f32, CnnGrads) {
    let mut sum = net.zero_grads();
    let mut lsum = 0.0f32;
    for (channels, &label) in batch.iter().zip(labels) {
        let cache = net.forward_cached(channels);
        let (loss, gl) = softmax_cross_entropy(&cache.logits, label);
        sum.add_assign(&net.backward(&cache, &gl));
        lsum += loss;
    }
    let inv = 1.0 / batch.len() as f32;
    sum.scale(inv);
    (lsum * inv, sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The batched backward pass — one weight-gradient GEMM per layer
    // with the batch reduction fused into its inner dimension — must
    // reproduce the per-sample gradient means for any batch size
    // (including 1) on both merging structures.
    #[test]
    fn backward_batch_matches_per_sample_gradient_means(
        num_channels in 1usize..3,
        late_bit in 0usize..2,
        batch in 1usize..8,
        seed in 0u64..1000,
    ) {
        let late = late_bit == 1;
        let net = tiny_cnn(num_channels, late, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let samples: Vec<Vec<Tensor>> =
            (0..batch).map(|_| randn_channels(num_channels, &mut rng)).collect();
        let labels: Vec<usize> = (0..batch).map(|i| (seed as usize + i) % CLASSES).collect();
        let (loss_b, gb) = batched_grads(&net, &samples, &labels);
        let (loss_r, gr) = reference_grads(&net, &samples, &labels);
        prop_assert!((loss_b - loss_r).abs() <= 1e-4 * (1.0 + loss_r.abs()),
            "loss {loss_b} vs {loss_r}");
        for (pi, (g, w)) in gb.flat().iter().zip(gr.flat()).enumerate() {
            prop_assert_eq!(g.shape(), w.shape());
            for (i, (a, b)) in g.data().iter().zip(w.data()).enumerate() {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "param {}[{}]: {} vs {}", pi, i, a, b);
            }
        }
    }
}

/// Mean batch loss of `net` on `batch` through the batched forward +
/// fused loss — the scalar the finite-difference check probes.
fn batch_loss(net: &Cnn, batch: &[Vec<Tensor>], labels: &[usize]) -> f32 {
    let refs: Vec<&[Tensor]> = batch.iter().map(|c| c.as_slice()).collect();
    let mut cache = CnnBatchCache::default();
    net.forward_batch_cached(&refs, &mut cache);
    let mut glogits = Vec::new();
    let (logits, classes) = cache.logits_rows();
    softmax_cross_entropy_batch(logits, classes, labels, &mut glogits)
}

#[test]
fn batched_parameter_gradients_match_finite_differences() {
    finite_diff_battery();
}

/// Satellite re-run: the identical finite-difference battery must hold
/// when every GEMM inside the batched forward/backward runs through
/// the threaded path (Fixed(4) partitions rows even when the pool is
/// smaller than four workers).
#[test]
fn finite_differences_hold_under_threaded_gemm() {
    with_gemm_threading(GemmThreading::Fixed(4), finite_diff_battery);
}

fn finite_diff_battery() {
    let mut net = tiny_cnn(2, true, 77);
    let mut rng = StdRng::seed_from_u64(78);
    let samples: Vec<Vec<Tensor>> = (0..3).map(|_| randn_channels(2, &mut rng)).collect();
    let labels = vec![0usize, 2, 1];
    let (_, grads) = batched_grads(&net, &samples, &labels);
    let analytic: Vec<Vec<f32>> = grads.flat().iter().map(|g| g.data().to_vec()).collect();
    let eps = 1e-2f32;
    let (mut checked, mut bad) = (0usize, 0usize);
    for (pi, arow) in analytic.iter().enumerate() {
        let len = arow.len();
        for idx in (0..len).step_by((len / 4).max(1)) {
            let probe = |net: &mut Cnn, delta: f32| {
                net.params_mut_flat()[pi].0.data_mut()[idx] += delta;
            };
            probe(&mut net, eps);
            let lp = batch_loss(&net, &samples, &labels);
            probe(&mut net, -2.0 * eps);
            let lm = batch_loss(&net, &samples, &labels);
            probe(&mut net, eps);
            let num = (lp - lm) / (2.0 * eps);
            let ana = arow[idx];
            checked += 1;
            if (num - ana).abs() > 2e-2 * (1.0 + num.abs().max(ana.abs())) {
                bad += 1;
            }
        }
    }
    // ReLU/pool kinks can spoil a few probes; the overwhelming
    // majority must agree.
    assert!(checked >= 20, "only {checked} probes");
    assert!(
        bad * 10 <= checked,
        "{bad}/{checked} finite-diff checks failed"
    );
}

/// Satellite re-run of the PR 2 agreement pin under threaded GEMM:
/// the batched trainer and the per-sample reference trainer still
/// produce the same loss history when both run at 4 GEMM threads, and
/// the threaded batched run is *bit-identical* to the serial one.
#[test]
fn batched_and_reference_training_agree_under_threaded_gemm() {
    let mut rng = StdRng::seed_from_u64(55);
    let samples: Vec<Sample> = (0..10)
        .map(|i| Sample {
            channels: randn_channels(2, &mut rng),
            label: i % CLASSES,
        })
        .collect();
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 4,
        lr: 2e-3,
        gemm_threading: GemmThreading::Fixed(4),
        ..TrainConfig::default()
    };
    let mut a = tiny_cnn(2, true, 23);
    let mut b = a.clone();
    let ra = train(&mut a, &samples, &cfg);
    let rb = train_reference(&mut b, &samples, &cfg);
    assert_eq!(ra.loss_history.len(), rb.loss_history.len());
    for (i, (x, y)) in ra.loss_history.iter().zip(&rb.loss_history).enumerate() {
        assert!(
            (x - y).abs() <= 1e-3,
            "step {i}: batched {x} vs reference {y} (threaded)"
        );
    }
    assert_eq!(ra.epoch_train_acc, rb.epoch_train_acc);

    let serial_cfg = TrainConfig {
        gemm_threading: GemmThreading::Serial,
        ..cfg.clone()
    };
    let mut c = tiny_cnn(2, true, 23);
    let rc = train(&mut c, &samples, &serial_cfg);
    assert_eq!(a, c, "threaded training must be bit-identical to serial");
    for (i, (x, y)) in ra.loss_history.iter().zip(&rc.loss_history).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "loss step {i}: 4t {x} vs serial {y}"
        );
    }
}

#[test]
fn batched_path_handles_a_short_trailing_batch() {
    // 7 samples split 4 + 3 (batch size not a divisor of the dataset):
    // running the two chunks through the SAME reused cache must still
    // match the reference, proving stale larger-batch state cannot
    // leak into a smaller batch.
    let net = tiny_cnn(1, true, 91);
    let mut rng = StdRng::seed_from_u64(92);
    let samples: Vec<Vec<Tensor>> = (0..7).map(|_| randn_channels(1, &mut rng)).collect();
    let labels: Vec<usize> = (0..7).map(|i| i % CLASSES).collect();
    let mut cache = CnnBatchCache::default();
    let mut glogits = Vec::new();
    let mut grads = net.zero_grads();
    for (chunk, lchunk) in samples.chunks(4).zip(labels.chunks(4)) {
        let refs: Vec<&[Tensor]> = chunk.iter().map(|c| c.as_slice()).collect();
        net.forward_batch_cached(&refs, &mut cache);
        let (logits, classes) = cache.logits_rows();
        let loss = softmax_cross_entropy_batch(logits, classes, lchunk, &mut glogits);
        net.backward_batch(
            &mut cache,
            &glogits[..chunk.len() * classes],
            false,
            &mut grads,
        );
        let (loss_r, gr) = reference_grads(&net, chunk, lchunk);
        assert!((loss - loss_r).abs() <= 1e-4 * (1.0 + loss_r.abs()));
        for (g, w) in grads.flat().iter().zip(gr.flat()) {
            for (a, b) in g.data().iter().zip(w.data()) {
                assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }
}
