//! Dev profiling harness for the batched inference path: times the
//! single-sample and batched predict paths and their stages so perf
//! work on `forward_batch` has numbers to aim at.
//! Run with `cargo run --release -p dnnspmv-nn --example profile_batch`.

use dnnspmv_nn::layers::Layer;
use dnnspmv_nn::{build_cnn, CnnConfig, Merging, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let vol: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..vol).map(|_| rng.random::<f32>() - 0.5).collect())
}

fn time<F: FnMut()>(label: &str, reps: usize, mut f: F) -> f64 {
    // Warm up.
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("{label:44} {us:10.1} us");
    us
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = build_cnn(
        Merging::Late,
        2,
        (32, 32),
        4,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 7,
        },
    );
    let n = 32;
    let samples: Vec<Vec<Tensor>> = (0..n)
        .map(|_| (0..2).map(|_| rand_tensor(&[32, 32], &mut rng)).collect())
        .collect();
    let refs: Vec<&[Tensor]> = samples.iter().map(|s| s.as_slice()).collect();
    let reps = 200;

    time(&format!("predict x{n} singles"), reps, || {
        for s in &samples {
            black_box(net.predict(black_box(s)));
        }
    });
    time(&format!("predict_batch {n}"), reps, || {
        black_box(net.predict_batch(black_box(&refs)));
    });

    // Tower-level: one tower over the batch vs per-sample.
    let tower = &net.towers[0];
    let xs: Vec<Tensor> = samples
        .iter()
        .map(|s| s[0].clone().reshape(&[1, 32, 32]))
        .collect();
    time("tower forward x32 singles", reps, || {
        for x in &xs {
            black_box(tower.forward(black_box(x)));
        }
    });
    time("tower forward_batch 32", reps, || {
        black_box(tower.forward_batch(black_box(xs.clone())));
    });
    time("  (xs.clone() overhead)", reps, || {
        black_box(xs.clone());
    });

    // Full packed walk, chained like the real forward_batch.
    if let Layer::Conv2d(c0) = &tower.layers[0] {
        time("packed chain (conv entry + walk)", reps, || {
            let mut p = c0.forward_batch_packed(black_box(&xs));
            for l in &tower.layers[1..] {
                match l.forward_packed(&p) {
                    Some(next) => p = next,
                    None => break,
                }
            }
            black_box(p);
        });
        let mut p = c0.forward_batch_packed(&xs);
        for l in &tower.layers[1..] {
            match l.forward_packed(&p) {
                Some(next) => p = next,
                None => break,
            }
        }
        time("unpack_batch at flatten", reps, || {
            black_box(dnnspmv_nn::layers::unpack_batch(black_box(&p)));
        });

        // Per-layer cost measured while chained (fresh inputs each
        // rep, allocator behaving as in production).
        let mut acc = vec![0.0f64; tower.layers.len()];
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut p = c0.forward_batch_packed(black_box(&xs));
            acc[0] += t0.elapsed().as_secs_f64();
            for (i, l) in tower.layers.iter().enumerate().skip(1) {
                let t = Instant::now();
                match l.forward_packed(&p) {
                    Some(next) => {
                        p = next;
                        acc[i] += t.elapsed().as_secs_f64();
                    }
                    None => break,
                }
            }
            black_box(&p);
        }
        for (i, a) in acc.iter().enumerate() {
            if *a > 0.0 {
                println!(
                    "  chained layer {i} {:30} {:10.1} us",
                    tower.layers[i].describe(),
                    a * 1e6 / reps as f64
                );
            }
        }
    }

    // Layer-by-layer on the packed tensor.
    let mut packed: Option<Tensor> = None;
    for (i, l) in tower.layers.iter().enumerate() {
        let inp = match &packed {
            None => {
                let Layer::Conv2d(c) = l else { break };
                let t = time(
                    &format!("  layer {i} {} (entry)", l.describe()),
                    reps,
                    || {
                        black_box(c.forward_batch_packed(black_box(&xs)));
                    },
                );
                let _ = t;
                packed = Some(c.forward_batch_packed(&xs));
                continue;
            }
            Some(p) => p.clone(),
        };
        match l.forward_packed(&inp) {
            Some(next) => {
                time(
                    &format!("  layer {i} {} (packed)", l.describe()),
                    reps,
                    || {
                        black_box(l.forward_packed(black_box(&inp)));
                    },
                );
                packed = Some(next);
            }
            None => {
                println!("  layer {i} {} -> sample-wise", l.describe());
                break;
            }
        }
    }
}
