//! The trained CNN format selector.

use crate::error::SelectorError;
use crate::samples::{make_channels, make_samples};
use dnnspmv_nn::network::Cnn;
use dnnspmv_nn::serialize::{model_fingerprint, read_envelope_path, write_envelope_atomic};
use dnnspmv_nn::train::{confusion_matrix, evaluate, predict_proba};
use dnnspmv_nn::transfer::Migration;
use dnnspmv_nn::{build_cnn, CnnConfig, Merging, NnError, Sample, TrainConfig, TrainReport};
use dnnspmv_platform::{label_dataset, PlatformModel};
use dnnspmv_repr::{ReprConfig, ReprKind};
use dnnspmv_sparse::{AnyMatrix, CooMatrix, Scalar, SparseFormat};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Everything configurable about selector construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// Input representation (the paper's best: distance histograms).
    pub repr: ReprKind,
    /// Representation sizes.
    pub repr_config: ReprConfig,
    /// CNN merge placement (the paper's best: late merging).
    pub merging: Merging,
    /// CNN structural hyper-parameters.
    pub cnn: CnnConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            repr: ReprKind::Histogram,
            repr_config: ReprConfig::default(),
            merging: Merging::Late,
            cnn: CnnConfig::default(),
            train: TrainConfig::default(),
        }
    }
}

/// A trained format selector bound to one platform's format set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatSelector {
    /// The trained network.
    pub net: Cnn,
    /// Class index → format mapping (the platform's candidate set).
    pub formats: Vec<SparseFormat>,
    /// Construction configuration (needed for inference normalisation
    /// and for migration).
    pub config: SelectorConfig,
}

impl FormatSelector {
    /// Full Figure 3 construction: label on `platform`, normalise,
    /// build the CNN, train. Returns the selector and its training
    /// report.
    pub fn train_on_platform<S: Scalar>(
        matrices: &[CooMatrix<S>],
        platform: &PlatformModel,
        config: &SelectorConfig,
    ) -> (Self, TrainReport) {
        let labels = label_dataset(matrices, platform);
        Self::train_with_labels(matrices, &labels, platform.formats().to_vec(), config)
    }

    /// Construction from precollected labels (indices into `formats`).
    pub fn train_with_labels<S: Scalar>(
        matrices: &[CooMatrix<S>],
        labels: &[usize],
        formats: Vec<SparseFormat>,
        config: &SelectorConfig,
    ) -> (Self, TrainReport) {
        Self::try_train_with_labels(matrices, labels, formats, config).expect("training failed")
    }

    /// Fallible [`Self::train_with_labels`]: training errors (a
    /// diverged run, a rejected `resume_from` checkpoint) surface as
    /// `Err` instead of a panic.
    pub fn try_train_with_labels<S: Scalar>(
        matrices: &[CooMatrix<S>],
        labels: &[usize],
        formats: Vec<SparseFormat>,
        config: &SelectorConfig,
    ) -> Result<(Self, TrainReport), SelectorError> {
        let samples = make_samples(matrices, labels, config.repr, &config.repr_config);
        Self::try_train_on_samples(&samples, formats, config)
    }

    /// Construction from prebuilt samples (lets callers reuse one
    /// normalisation pass across experiments).
    pub fn train_on_samples(
        samples: &[Sample],
        formats: Vec<SparseFormat>,
        config: &SelectorConfig,
    ) -> (Self, TrainReport) {
        Self::try_train_on_samples(samples, formats, config).expect("training failed")
    }

    /// Fallible [`Self::train_on_samples`] (see
    /// [`Self::try_train_with_labels`]).
    pub fn try_train_on_samples(
        samples: &[Sample],
        formats: Vec<SparseFormat>,
        config: &SelectorConfig,
    ) -> Result<(Self, TrainReport), SelectorError> {
        if formats.is_empty() {
            return Err(SelectorError::Invalid("need a non-empty format set".into()));
        }
        let shape = config.repr_config.channel_shape(config.repr);
        let mut net = build_cnn(
            config.merging,
            config.repr.channels(),
            shape,
            formats.len(),
            &config.cnn,
        );
        let report = dnnspmv_nn::train_with_hooks(
            &mut net,
            samples,
            &config.train,
            dnnspmv_nn::TrainHooks::default(),
        )?;
        Ok((
            Self {
                net,
                formats,
                config: config.clone(),
            },
            report,
        ))
    }

    /// Predicts the best storage format for a matrix.
    pub fn predict<S: Scalar>(&self, matrix: &CooMatrix<S>) -> SparseFormat {
        self.formats[self.predict_label(matrix)]
    }

    /// Predicts the class label (index into [`Self::formats`]).
    pub fn predict_label<S: Scalar>(&self, matrix: &CooMatrix<S>) -> usize {
        let channels = make_channels(matrix, self.config.repr, &self.config.repr_config);
        self.net.predict(&channels)
    }

    /// Predicts class labels for many matrices at once. All samples go
    /// through [`Cnn::predict_batch`], so every network layer runs one
    /// GEMM for the whole batch instead of one per matrix.
    pub fn predict_labels_batch<S: Scalar>(&self, matrices: &[CooMatrix<S>]) -> Vec<usize> {
        let channels: Vec<Vec<dnnspmv_nn::Tensor>> = matrices
            .iter()
            .map(|m| make_channels(m, self.config.repr, &self.config.repr_config))
            .collect();
        let refs: Vec<&[dnnspmv_nn::Tensor]> = channels.iter().map(|c| c.as_slice()).collect();
        self.net.predict_batch(&refs)
    }

    /// Batched version of [`Self::predict`], parallel to `matrices`.
    pub fn predict_batch<S: Scalar>(&self, matrices: &[CooMatrix<S>]) -> Vec<SparseFormat> {
        self.predict_labels_batch(matrices)
            .into_iter()
            .map(|label| self.formats[label])
            .collect()
    }

    /// Per-format probabilities, parallel to [`Self::formats`].
    pub fn predict_proba<S: Scalar>(&self, matrix: &CooMatrix<S>) -> Vec<f32> {
        let channels = make_channels(matrix, self.config.repr, &self.config.repr_config);
        predict_proba(&self.net, &channels)
    }

    /// [`Self::predict_proba`] with cooperative-cancellation
    /// checkpoints through both the representation extraction and the
    /// CNN forward pass; `None` once `cancel` reports `true`. This is
    /// the deadline seam the serving layer uses so a pathological
    /// matrix cannot wedge a worker.
    pub fn predict_proba_with_cancel<S: Scalar>(
        &self,
        matrix: &CooMatrix<S>,
        cancel: &dyn Fn() -> bool,
    ) -> Option<Vec<f32>> {
        let channels = crate::samples::make_channels_with_cancel(
            matrix,
            self.config.repr,
            &self.config.repr_config,
            cancel,
        )?;
        let logits = self.net.forward_with_cancel(&channels, cancel)?;
        Some(dnnspmv_nn::loss::softmax(logits.data()))
    }

    /// Converts `matrix` into the predicted format, falling back down
    /// the probability ranking (and ultimately to CSR) when a
    /// conversion is infeasible — mirroring what a library integration
    /// would do.
    pub fn prepare<S: Scalar>(&self, matrix: &CooMatrix<S>) -> AnyMatrix<S> {
        let mut order: Vec<(usize, f32)> =
            self.predict_proba(matrix).into_iter().enumerate().collect();
        // NaN probabilities (a damaged network's logits can overflow
        // softmax) sort as equal instead of panicking; the CSR tail
        // below still guarantees a usable result.
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (label, _) in order {
            if let Ok(m) = AnyMatrix::convert(matrix, self.formats[label]) {
                return m;
            }
        }
        AnyMatrix::convert(matrix, SparseFormat::Csr).expect("CSR conversion cannot fail")
    }

    /// Accuracy against reference labels.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        evaluate(&self.net, samples)
    }

    /// `confusion[truth][predicted]` over prebuilt samples.
    pub fn confusion(&self, samples: &[Sample]) -> Vec<Vec<usize>> {
        confusion_matrix(&self.net, samples, self.formats.len())
    }

    /// Migrates this selector to a new platform using the given
    /// transfer-learning strategy and target-platform samples
    /// (Section 6). The target platform must expose the same format
    /// set (the paper migrates Intel CPU → AMD CPU).
    pub fn migrate(
        &self,
        strategy: Migration,
        target_samples: &[Sample],
        train_cfg: &TrainConfig,
    ) -> (Self, TrainReport) {
        let shape = self.config.repr_config.channel_shape(self.config.repr);
        let structure = (
            self.config.merging,
            self.config.repr.channels(),
            shape,
            self.formats.len(),
            self.config.cnn.clone(),
        );
        let (net, report) =
            dnnspmv_nn::migrate(&self.net, strategy, target_samples, structure, train_cfg);
        (
            Self {
                net,
                formats: self.formats.clone(),
                config: self.config.clone(),
            },
            report,
        )
    }

    /// Internal consistency of the selector as a whole: the network
    /// must validate structurally, and its input/output contract must
    /// match the declared representation and format set. Everything a
    /// loaded artefact needs before [`Self::predict`] can be trusted
    /// not to panic.
    pub fn validate(&self) -> Result<(), SelectorError> {
        self.net
            .validate()
            .map_err(|m| SelectorError::Nn(NnError::InvalidModel(m)))?;
        if self.formats.is_empty() {
            return Err(SelectorError::Invalid("empty format set".into()));
        }
        let out = self.net.out_dim();
        if out != Some(self.formats.len()) {
            return Err(SelectorError::Invalid(format!(
                "network emits {out:?} classes but the format set has {}",
                self.formats.len()
            )));
        }
        let channels = self.config.repr.channels();
        if self.net.num_channels != channels {
            return Err(SelectorError::Invalid(format!(
                "network expects {} input channels but representation {:?} produces {channels}",
                self.net.num_channels, self.config.repr
            )));
        }
        let shape = self.config.repr_config.channel_shape(self.config.repr);
        if self.net.channel_shape != shape {
            return Err(SelectorError::Invalid(format!(
                "network expects {:?} channel shape but representation config produces {shape:?}",
                self.net.channel_shape
            )));
        }
        Ok(())
    }

    /// Saves the selector (network + format mapping + config) as an
    /// enveloped, checksummed JSON artefact, written atomically.
    /// Deliberately does not validate — tests persist broken selectors
    /// to prove [`Self::load`] rejects them.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SelectorError> {
        write_envelope_atomic(KIND_SELECTOR, model_fingerprint(&self.net), self, path)
            .map_err(SelectorError::from)
    }

    /// Loads and validates a selector saved by [`Self::save`].
    ///
    /// Corrupted, truncated or internally inconsistent files return a
    /// typed `Err`; a returned selector has passed [`Self::validate`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SelectorError> {
        let (sel, fingerprint): (Self, u64) = read_envelope_path(KIND_SELECTOR, path)?;
        sel.validate()?;
        let derived = model_fingerprint(&sel.net);
        if derived != fingerprint {
            return Err(SelectorError::Nn(NnError::ConfigMismatch(format!(
                "selector fingerprint {fingerprint:#018x} does not match its network \
                 ({derived:#018x})"
            ))));
        }
        Ok(sel)
    }
}

/// Envelope kind tag for persisted [`FormatSelector`]s.
pub const KIND_SELECTOR: &str = "format-selector";

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_gen::{Dataset, DatasetSpec};
    use dnnspmv_nn::OptimizerKind;

    /// A small but trainable configuration for tests.
    fn test_config() -> SelectorConfig {
        SelectorConfig {
            repr: ReprKind::Histogram,
            repr_config: ReprConfig {
                image_size: 32,
                hist_rows: 32,
                hist_bins: 16,
            },
            cnn: CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 11,
            },
            train: TrainConfig {
                epochs: 6,
                batch_size: 16,
                lr: 2e-3,
                optimizer: OptimizerKind::adam(),
                seed: 13,
                ..TrainConfig::default()
            },
            ..SelectorConfig::default()
        }
    }

    fn small_dataset() -> Dataset {
        Dataset::generate(&DatasetSpec {
            n_base: 80,
            n_augmented: 0,
            dim_min: 48,
            dim_max: 160,
            ..DatasetSpec::tiny(21)
        })
    }

    #[test]
    fn trains_and_beats_chance_on_real_labels() {
        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, report) =
            FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        assert!(!report.loss_history.is_empty());
        let labels = label_dataset(&data.matrices, &platform);
        let samples = make_samples(
            &data.matrices,
            &labels,
            sel.config.repr,
            &sel.config.repr_config,
        );
        let acc = sel.accuracy(&samples);
        // Four classes; labels are CSR-heavy, so even the majority
        // class baseline is beatable but chance (0.25) must be.
        assert!(acc > 0.5, "train accuracy only {acc}");
    }

    #[test]
    fn predict_returns_format_from_platform_set() {
        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        for m in data.matrices.iter().take(10) {
            let f = sel.predict(m);
            assert!(platform.formats().contains(&f));
            let p = sel.predict_proba(m);
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_prediction_matches_per_matrix_calls() {
        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        let subset = &data.matrices[..12];
        let batched = sel.predict_batch(subset);
        let labels = sel.predict_labels_batch(subset);
        assert_eq!(batched.len(), subset.len());
        for (i, m) in subset.iter().enumerate() {
            assert_eq!(batched[i], sel.predict(m), "matrix {i}");
            assert_eq!(labels[i], sel.predict_label(m), "matrix {i}");
        }
        assert!(sel.predict_batch::<f32>(&[]).is_empty());
    }

    #[test]
    fn prepare_always_yields_a_usable_matrix() {
        use dnnspmv_sparse::Spmv;
        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        let m = &data.matrices[0];
        let prepared = sel.prepare(m);
        let x = vec![1.0f32; m.ncols()];
        let y = prepared.spmv_alloc(&x);
        let want = m.spmv_alloc(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        let dir = std::env::temp_dir().join("dnnspmv_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("selector.json");
        sel.save(&p).unwrap();
        let back = FormatSelector::load(&p).unwrap();
        std::fs::remove_file(&p).ok();
        for m in data.matrices.iter().take(5) {
            assert_eq!(back.predict(m), sel.predict(m));
        }
    }

    #[test]
    fn corrupted_and_mismatched_selector_files_error_cleanly() {
        use dnnspmv_nn::NnError;

        let data = small_dataset();
        let platform = PlatformModel::intel_cpu();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &platform, &test_config());
        let dir = std::env::temp_dir().join("dnnspmv_core_robust");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("selector.json");
        sel.save(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();

        // Truncated file: parse error, not a panic.
        std::fs::write(&p, &text[..text.len() / 3]).unwrap();
        let err = FormatSelector::load(&p).unwrap_err();
        assert!(matches!(err, SelectorError::Nn(NnError::Serde(_))), "{err}");

        // Flipped payload byte: checksum failure.
        let mangled = text.replacen("formats", "f0rmats", 1);
        assert_ne!(mangled, text);
        std::fs::write(&p, &mangled).unwrap();
        let err = FormatSelector::load(&p).unwrap_err();
        assert!(
            matches!(err, SelectorError::Nn(NnError::ChecksumMismatch { .. })),
            "{err}"
        );

        // Structurally inconsistent selector (format set grown past the
        // network's output dimension), saved with a *valid* envelope:
        // only load-time validation can reject it.
        let mut broken = sel.clone();
        broken.formats.push(SparseFormat::Csr);
        broken.save(&p).unwrap();
        let err = FormatSelector::load(&p).unwrap_err();
        assert!(matches!(err, SelectorError::Invalid(_)), "{err}");

        // Declared channel count mangled inside the network.
        let mut broken = sel.clone();
        broken.net.num_channels = 17;
        broken.save(&p).unwrap();
        let err = FormatSelector::load(&p).unwrap_err();
        assert!(
            matches!(err, SelectorError::Nn(NnError::InvalidModel(_))),
            "{err}"
        );

        // The pristine artefact still loads after all that.
        sel.save(&p).unwrap();
        assert!(FormatSelector::load(&p).is_ok());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn migrate_produces_selector_with_same_format_set() {
        let data = small_dataset();
        let intel = PlatformModel::intel_cpu();
        let amd = PlatformModel::amd_cpu();
        let cfg = test_config();
        let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &cfg);
        let amd_labels = label_dataset(&data.matrices, &amd);
        let target = make_samples(&data.matrices, &amd_labels, cfg.repr, &cfg.repr_config);
        for strat in Migration::ALL {
            let (migrated, _) = sel.migrate(
                strat,
                &target[..20],
                &TrainConfig {
                    epochs: 1,
                    ..cfg.train.clone()
                },
            );
            assert_eq!(migrated.formats, sel.formats);
        }
    }
}
