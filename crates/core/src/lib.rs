//! End-to-end CNN-based sparse matrix format selector — the paper's
//! primary contribution, wired together (Figure 3).
//!
//! Construction (training) runs the four steps of Section 3:
//!
//! 1. **Label collection** — run (here: cost-model or measured) SpMV in
//!    every candidate format per matrix; the fastest format is the
//!    label ([`dnnspmv_platform`]).
//! 2. **Normalisation** — map each matrix to a fixed-size
//!    representation ([`dnnspmv_repr`]).
//! 3. **Structure design** — build a late-merging (or early-merging)
//!    CNN ([`dnnspmv_nn::structures`]).
//! 4. **Training** — standard mini-batch backprop.
//!
//! Inference normalises the input matrix and takes the CNN's argmax.
//! [`FormatSelector::migrate`] ports a trained selector to another
//! platform via transfer learning (Section 6).
//!
//! For deployment, [`SelectorService`] wraps the CNN in a
//! graceful-degradation ladder (CNN → decision tree → CSR) with
//! observable fallback counters, and all persistence goes through
//! validated, checksummed envelopes surfacing [`SelectorError`].

//! [`SelectorServer`] adds the serving layer on top: bounded-queue
//! admission control, per-request deadlines with cooperative
//! cancellation, a circuit breaker demoting a misbehaving CNN to the
//! tree rung, and validated hot model reload. Its throughput hot path
//! is two-staged: a fingerprint-keyed decision cache
//! ([`DecisionCache`]) answers structurally repeated matrices at
//! admission, and workers coalesce cache misses into micro-batches
//! sharing one packed CNN forward pass.

pub mod baseline;
pub mod cache;
pub mod error;
pub mod samples;
pub mod selector;
pub mod server;
pub mod service;

pub use baseline::DtSelector;
pub use cache::{
    matrix_fingerprint, CacheConfig, CacheInsert, CacheLookup, DecisionCache,
    FINGERPRINT_COORD_SAMPLE,
};
pub use error::SelectorError;
pub use samples::make_samples;
pub use selector::{FormatSelector, SelectorConfig};
pub use server::{
    load_selector_with_retry, system_clock, BreakerConfig, BreakerSnapshot, BreakerState, ClockFn,
    PendingSelection, SelectorServer, ServeCacheReport, ServeError, ServeHooks, ServeTap,
    ServerConfig, ServerReport,
};
pub use service::{
    BatchGuard, CnnFault, CnnRungOutcome, GuardedSelection, SelectGuard, Selection,
    SelectionSource, SelectorService, ServiceReport,
};
