//! Graceful-degradation inference: CNN → decision tree → static CSR.
//!
//! A deployed selector sits on the hot path of someone else's solver,
//! so a bad model file or a pathological input must never take the
//! host down — at worst the caller gets CSR, the format every library
//! supports. [`SelectorService`] wraps the CNN selector with a
//! fallback ladder:
//!
//! 1. **CNN** — used when its probabilities are finite and the top
//!    class clears the confidence threshold. Panics inside the network
//!    (defence in depth; load-time validation should make them
//!    unreachable) are caught and demoted to a fallback.
//! 2. **Decision tree** — the SMAT-style baseline, structurally
//!    simpler and independent of the CNN artefact.
//! 3. **Static default** — CSR unless configured otherwise.
//!
//! Every decision increments an observable counter
//! ([`SelectorService::report`]), so a deployment that silently
//! degrades to CSR shows up in monitoring instead of in a performance
//! regression hunt.

use crate::baseline::DtSelector;
use crate::error::SelectorError;
use crate::selector::FormatSelector;
use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which rung of the ladder produced a [`Selection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionSource {
    /// The CNN selector answered with confidence.
    Cnn,
    /// The decision-tree baseline answered.
    Tree,
    /// The static default format.
    Default,
}

/// One format decision, with provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The chosen storage format.
    pub format: SparseFormat,
    /// Which predictor chose it.
    pub source: SelectionSource,
    /// Top-class probability when the CNN answered, `None` otherwise.
    pub confidence: Option<f32>,
}

/// Monotonic counters describing what the ladder has been doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ServiceReport {
    /// CNN answered.
    pub cnn_ok: u64,
    /// CNN panicked and was demoted (defence in depth).
    pub cnn_panic: u64,
    /// CNN produced NaN/Inf probabilities.
    pub cnn_nonfinite: u64,
    /// CNN's top class fell below the confidence threshold.
    pub cnn_low_confidence: u64,
    /// Decision tree answered.
    pub tree_ok: u64,
    /// Decision tree panicked and was demoted.
    pub tree_panic: u64,
    /// The static default format was used.
    pub default_used: u64,
}

#[derive(Debug, Default)]
struct Counters {
    cnn_ok: AtomicU64,
    cnn_panic: AtomicU64,
    cnn_nonfinite: AtomicU64,
    cnn_low_confidence: AtomicU64,
    tree_ok: AtomicU64,
    tree_panic: AtomicU64,
    default_used: AtomicU64,
}

/// Fault-tolerant format-selection front end (see module docs).
#[derive(Debug)]
pub struct SelectorService {
    cnn: Option<FormatSelector>,
    tree: Option<DtSelector>,
    default_format: SparseFormat,
    confidence_threshold: f32,
    counters: Counters,
}

impl SelectorService {
    /// Builds a service over an optional CNN selector and an optional
    /// tree baseline. Both are validated up front — a service never
    /// holds a predictor that load-time checks would reject.
    pub fn new(
        cnn: Option<FormatSelector>,
        tree: Option<DtSelector>,
    ) -> Result<Self, SelectorError> {
        if let Some(c) = &cnn {
            c.validate()?;
        }
        if let Some(t) = &tree {
            t.validate()?;
        }
        Ok(Self {
            cnn,
            tree,
            default_format: SparseFormat::Csr,
            confidence_threshold: 0.0,
            counters: Counters::default(),
        })
    }

    /// Requires the CNN's top-class probability to reach `t` before its
    /// answer is trusted (default 0: any finite answer is accepted).
    pub fn with_confidence_threshold(mut self, t: f32) -> Self {
        self.confidence_threshold = t;
        self
    }

    /// Replaces the static fallback format (default CSR).
    pub fn with_default_format(mut self, f: SparseFormat) -> Self {
        self.default_format = f;
        self
    }

    /// The static fallback format.
    pub fn default_format(&self) -> SparseFormat {
        self.default_format
    }

    /// Picks a storage format for `matrix`, degrading down the ladder
    /// as needed. Total: never panics, always returns a format.
    pub fn select<S: Scalar>(&self, matrix: &CooMatrix<S>) -> Selection {
        if let Some(cnn) = &self.cnn {
            match catch_unwind(AssertUnwindSafe(|| cnn.predict_proba(matrix))) {
                Err(_) => {
                    self.counters.cnn_panic.fetch_add(1, Ordering::Relaxed);
                }
                Ok(probs) if probs.iter().any(|p| !p.is_finite()) => {
                    self.counters.cnn_nonfinite.fetch_add(1, Ordering::Relaxed);
                }
                Ok(probs) => {
                    let (best, &p) = probs
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .expect("validated selector has a non-empty class set");
                    if p < self.confidence_threshold {
                        self.counters
                            .cnn_low_confidence
                            .fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.counters.cnn_ok.fetch_add(1, Ordering::Relaxed);
                        return Selection {
                            format: cnn.formats[best],
                            source: SelectionSource::Cnn,
                            confidence: Some(p),
                        };
                    }
                }
            }
        }
        if let Some(tree) = &self.tree {
            match catch_unwind(AssertUnwindSafe(|| tree.predict(matrix))) {
                Ok(format) => {
                    self.counters.tree_ok.fetch_add(1, Ordering::Relaxed);
                    return Selection {
                        format,
                        source: SelectionSource::Tree,
                        confidence: None,
                    };
                }
                Err(_) => {
                    self.counters.tree_panic.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.default_used.fetch_add(1, Ordering::Relaxed);
        Selection {
            format: self.default_format,
            source: SelectionSource::Default,
            confidence: None,
        }
    }

    /// Snapshot of the fallback counters.
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            cnn_ok: self.counters.cnn_ok.load(Ordering::Relaxed),
            cnn_panic: self.counters.cnn_panic.load(Ordering::Relaxed),
            cnn_nonfinite: self.counters.cnn_nonfinite.load(Ordering::Relaxed),
            cnn_low_confidence: self.counters.cnn_low_confidence.load(Ordering::Relaxed),
            tree_ok: self.counters.tree_ok.load(Ordering::Relaxed),
            tree_panic: self.counters.tree_panic.load(Ordering::Relaxed),
            default_used: self.counters.default_used.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::SelectorConfig;
    use dnnspmv_gen::{Dataset, DatasetSpec};
    use dnnspmv_nn::{CnnConfig, TrainConfig};
    use dnnspmv_platform::{label_dataset, PlatformModel};
    use dnnspmv_repr::{ReprConfig, ReprKind};

    fn test_config() -> SelectorConfig {
        SelectorConfig {
            repr: ReprKind::Histogram,
            repr_config: ReprConfig {
                image_size: 32,
                hist_rows: 32,
                hist_bins: 16,
            },
            cnn: CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 11,
            },
            train: TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 13,
                ..TrainConfig::default()
            },
            ..SelectorConfig::default()
        }
    }

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetSpec {
            n_base: 60,
            n_augmented: 0,
            dim_min: 48,
            dim_max: 160,
            ..DatasetSpec::tiny(31)
        })
    }

    fn trained_pair() -> (FormatSelector, DtSelector, Dataset) {
        let data = dataset();
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let (cnn, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            platform.formats().to_vec(),
            &test_config(),
        );
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        (cnn, dt, data)
    }

    #[test]
    fn healthy_service_answers_from_the_cnn() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        for m in data.matrices.iter().take(8) {
            let sel = svc.select(m);
            assert_eq!(sel.source, SelectionSource::Cnn);
            assert!(sel.confidence.unwrap() > 0.0);
        }
        let r = svc.report();
        assert_eq!(r.cnn_ok, 8);
        assert_eq!(
            r.tree_ok + r.default_used + r.cnn_panic + r.cnn_nonfinite,
            0
        );
    }

    #[test]
    fn poisoned_cnn_degrades_to_tree_then_counts_it() {
        let (mut cnn, dt, data) = trained_pair();
        // Blow up the head weights: logits overflow, softmax goes NaN.
        for layer in &mut cnn.net.head.layers {
            if let dnnspmv_nn::Layer::Dense(d) = layer {
                for v in d.weight.data_mut() {
                    *v = 1e30;
                }
            }
        }
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Tree);
        let r = svc.report();
        assert_eq!(r.cnn_nonfinite, 1);
        assert_eq!(r.tree_ok, 1);
        assert_eq!(r.cnn_ok, 0);
    }

    #[test]
    fn no_predictors_still_yields_the_default_format() {
        let svc = SelectorService::new(None, None).unwrap();
        let data = dataset();
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Default);
        assert_eq!(sel.format, SparseFormat::Csr);
        assert_eq!(svc.report().default_used, 1);
    }

    #[test]
    fn unreachable_confidence_threshold_falls_through() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt))
            .unwrap()
            .with_confidence_threshold(1.1);
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Tree);
        let r = svc.report();
        assert_eq!(r.cnn_low_confidence, 1);
        assert_eq!(r.tree_ok, 1);
    }

    #[test]
    fn invalid_predictor_is_rejected_at_construction() {
        let (mut cnn, _, _) = trained_pair();
        cnn.formats.clear();
        assert!(SelectorService::new(Some(cnn), None).is_err());
    }
}
