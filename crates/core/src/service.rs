//! Graceful-degradation inference: CNN → decision tree → static CSR.
//!
//! A deployed selector sits on the hot path of someone else's solver,
//! so a bad model file or a pathological input must never take the
//! host down — at worst the caller gets CSR, the format every library
//! supports. [`SelectorService`] wraps the CNN selector with a
//! fallback ladder:
//!
//! 1. **CNN** — used when its probabilities are finite and the top
//!    class clears the confidence threshold. Panics inside the network
//!    (defence in depth; load-time validation should make them
//!    unreachable) are caught and demoted to a fallback.
//! 2. **Decision tree** — the SMAT-style baseline, structurally
//!    simpler and independent of the CNN artefact.
//! 3. **Static default** — CSR unless configured otherwise.
//!
//! Every decision increments an observable counter
//! ([`SelectorService::report`]), so a deployment that silently
//! degrades to CSR shows up in monitoring instead of in a performance
//! regression hunt.

use crate::baseline::DtSelector;
use crate::error::SelectorError;
use crate::selector::FormatSelector;
use dnnspmv_obs::{Counter, Registry};
use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which rung of the ladder produced a [`Selection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionSource {
    /// The CNN selector answered with confidence.
    Cnn,
    /// The decision-tree baseline answered.
    Tree,
    /// The static default format.
    Default,
}

/// One format decision, with provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The chosen storage format.
    pub format: SparseFormat,
    /// Which predictor chose it.
    pub source: SelectionSource,
    /// Top-class probability when the CNN answered, `None` otherwise.
    pub confidence: Option<f32>,
}

/// Fault injected into the CNN rung by a test harness (see
/// [`SelectGuard::inject`]). Production callers always pass
/// [`CnnFault::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CnnFault {
    /// No injected fault: run the real model.
    #[default]
    None,
    /// Panic inside the CNN rung (as a poisoned artefact would).
    Panic,
    /// Return all-NaN probabilities (as overflowed logits would).
    NonFinite,
}

/// What happened at the CNN rung of a guarded selection — the signal a
/// circuit breaker classifies into success or failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnRungOutcome {
    /// The CNN answered and its answer was used.
    Answered,
    /// The CNN panicked (caught; demoted to a fallback).
    Panicked,
    /// The CNN produced NaN/Inf probabilities.
    NonFinite,
    /// The CNN answered but below the confidence threshold (healthy
    /// model, uncertain input).
    LowConfidence,
    /// The deadline expired inside extraction or the forward pass.
    Cancelled,
    /// The caller asked to skip the CNN (breaker open).
    Skipped,
    /// The service holds no CNN.
    Absent,
}

/// Per-request options for [`SelectorService::select_guarded`].
#[derive(Clone, Copy, Default)]
pub struct SelectGuard<'a> {
    /// Skip the CNN rung entirely (a tripped circuit breaker demotes
    /// traffic to the tree this way).
    pub skip_cnn: bool,
    /// Cooperative-cancellation checkpoint: polled inside the
    /// representation extraction, between CNN layers, and between
    /// ladder rungs. Once it reports `true` the request is abandoned.
    pub cancel: Option<&'a dyn Fn() -> bool>,
    /// Injected CNN fault for deterministic failure testing.
    pub inject: CnnFault,
}

/// Per-member options for [`SelectorService::select_batch_guarded`]:
/// the single-path [`SelectGuard`] minus `skip_cnn` — a batch is only
/// formed for requests headed to the CNN rung; demoted traffic runs
/// the single path.
#[derive(Clone, Copy, Default)]
pub struct BatchGuard<'a> {
    /// This member's cooperative-cancellation checkpoint.
    pub cancel: Option<&'a dyn Fn() -> bool>,
    /// Injected CNN fault for deterministic failure testing; a faulted
    /// member is pulled out of the shared forward pass.
    pub inject: CnnFault,
}

/// Result of a guarded selection: the decision (absent only when the
/// request was cancelled) plus what the CNN rung did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedSelection {
    /// The decision, or `None` when the deadline expired first.
    pub selection: Option<Selection>,
    /// What happened at the CNN rung.
    pub cnn: CnnRungOutcome,
}

/// Monotonic counters describing what the ladder has been doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ServiceReport {
    /// CNN answered.
    pub cnn_ok: u64,
    /// CNN panicked and was demoted (defence in depth).
    pub cnn_panic: u64,
    /// CNN produced NaN/Inf probabilities.
    pub cnn_nonfinite: u64,
    /// CNN's top class fell below the confidence threshold.
    pub cnn_low_confidence: u64,
    /// CNN rung abandoned because the request's deadline expired.
    pub cnn_cancelled: u64,
    /// CNN rung skipped on request (circuit breaker open).
    pub cnn_skipped: u64,
    /// Decision tree answered.
    pub tree_ok: u64,
    /// Decision tree panicked and was demoted.
    pub tree_panic: u64,
    /// The static default format was used.
    pub default_used: u64,
}

impl ServiceReport {
    /// Field-wise sum — used to fold the counters of a retired model
    /// generation into the live totals across hot reloads.
    pub fn merged(&self, other: &ServiceReport) -> ServiceReport {
        ServiceReport {
            cnn_ok: self.cnn_ok + other.cnn_ok,
            cnn_panic: self.cnn_panic + other.cnn_panic,
            cnn_nonfinite: self.cnn_nonfinite + other.cnn_nonfinite,
            cnn_low_confidence: self.cnn_low_confidence + other.cnn_low_confidence,
            cnn_cancelled: self.cnn_cancelled + other.cnn_cancelled,
            cnn_skipped: self.cnn_skipped + other.cnn_skipped,
            tree_ok: self.tree_ok + other.tree_ok,
            tree_panic: self.tree_panic + other.tree_panic,
            default_used: self.default_used + other.default_used,
        }
    }

    /// Number of selections actually answered (one per completed
    /// request; cancelled and skipped rungs answer elsewhere or not at
    /// all).
    pub fn answered(&self) -> u64 {
        self.cnn_ok + self.tree_ok + self.default_used
    }
}

/// The ladder's counters are registry metrics
/// (`selector_rung_total{rung,outcome}`): a [`ServiceReport`] is a
/// typed *view* over them, and a serving layer that shares its registry
/// across hot-reloaded generations gets cross-generation totals for
/// free — the handles of every generation point at the same cells.
#[derive(Debug, Clone)]
struct Counters {
    cnn_ok: Counter,
    cnn_panic: Counter,
    cnn_nonfinite: Counter,
    cnn_low_confidence: Counter,
    cnn_cancelled: Counter,
    cnn_skipped: Counter,
    tree_ok: Counter,
    tree_panic: Counter,
    default_used: Counter,
}

impl Counters {
    fn bind(reg: &Registry) -> Self {
        let rung = |rung: &str, outcome: &str| {
            reg.counter(
                "selector_rung_total",
                &[("rung", rung), ("outcome", outcome)],
            )
        };
        Self {
            cnn_ok: rung("cnn", "ok"),
            cnn_panic: rung("cnn", "panic"),
            cnn_nonfinite: rung("cnn", "nonfinite"),
            cnn_low_confidence: rung("cnn", "low_confidence"),
            cnn_cancelled: rung("cnn", "cancelled"),
            cnn_skipped: rung("cnn", "skipped"),
            tree_ok: rung("tree", "ok"),
            tree_panic: rung("tree", "panic"),
            default_used: rung("default", "ok"),
        }
    }
}

/// Fault-tolerant format-selection front end (see module docs).
#[derive(Debug)]
pub struct SelectorService {
    cnn: Option<FormatSelector>,
    tree: Option<DtSelector>,
    default_format: SparseFormat,
    confidence_threshold: f32,
    registry: Registry,
    counters: Counters,
}

impl SelectorService {
    /// Builds a service over an optional CNN selector and an optional
    /// tree baseline. Both are validated up front — a service never
    /// holds a predictor that load-time checks would reject.
    pub fn new(
        cnn: Option<FormatSelector>,
        tree: Option<DtSelector>,
    ) -> Result<Self, SelectorError> {
        if let Some(c) = &cnn {
            c.validate()?;
        }
        if let Some(t) = &tree {
            t.validate()?;
        }
        let registry = Registry::new();
        let counters = Counters::bind(&registry);
        Ok(Self {
            cnn,
            tree,
            default_format: SparseFormat::Csr,
            confidence_threshold: 0.0,
            registry,
            counters,
        })
    }

    /// Rebinds the ladder counters to `registry` (builder; call before
    /// serving). A serving layer passes one shared registry to every
    /// model generation it constructs, so rung counts survive hot
    /// reloads without any merge step. Counts already recorded into the
    /// service's previous registry are left behind.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.counters = Counters::bind(&registry);
        self.registry = registry;
        self
    }

    /// The registry the ladder counters live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Requires the CNN's top-class probability to reach `t` before its
    /// answer is trusted (default 0: any finite answer is accepted).
    pub fn with_confidence_threshold(mut self, t: f32) -> Self {
        self.confidence_threshold = t;
        self
    }

    /// Replaces the static fallback format (default CSR).
    pub fn with_default_format(mut self, f: SparseFormat) -> Self {
        self.default_format = f;
        self
    }

    /// The static fallback format.
    pub fn default_format(&self) -> SparseFormat {
        self.default_format
    }

    /// The confidence threshold the CNN rung must clear.
    pub fn confidence_threshold(&self) -> f32 {
        self.confidence_threshold
    }

    /// The tree baseline, if any (a serving layer clones it when
    /// rebuilding the service around a hot-reloaded CNN).
    pub fn tree(&self) -> Option<&DtSelector> {
        self.tree.as_ref()
    }

    /// Whether a CNN rung is present.
    pub fn has_cnn(&self) -> bool {
        self.cnn.is_some()
    }

    /// Picks a storage format for `matrix`, degrading down the ladder
    /// as needed. Total: never panics, always returns a format.
    pub fn select<S: Scalar>(&self, matrix: &CooMatrix<S>) -> Selection {
        self.select_guarded(matrix, &SelectGuard::default())
            .selection
            .expect("selection without a cancel hook always answers")
    }

    /// [`SelectorService::select`] under per-request controls: an
    /// optional cancellation checkpoint (deadline enforcement), a
    /// skip-CNN demotion flag (tripped circuit breaker), and an
    /// injectable CNN fault (deterministic failure testing). Returns
    /// the decision — `None` only when `cancel` fired — plus the CNN
    /// rung outcome a breaker needs to classify the request.
    pub fn select_guarded<S: Scalar>(
        &self,
        matrix: &CooMatrix<S>,
        guard: &SelectGuard,
    ) -> GuardedSelection {
        let cnn_outcome = match &self.cnn {
            None => CnnRungOutcome::Absent,
            Some(_) if guard.skip_cnn => {
                self.counters.cnn_skipped.inc();
                CnnRungOutcome::Skipped
            }
            Some(cnn) => {
                let run = catch_unwind(AssertUnwindSafe(|| match guard.inject {
                    CnnFault::Panic => panic!("injected CNN fault"),
                    CnnFault::NonFinite => Some(vec![f32::NAN; cnn.formats.len()]),
                    CnnFault::None => {
                        // Chaos drives the same rung seams the value-level
                        // `CnnFault` hook uses: a panic action unwinds here
                        // (caught just like `CnnFault::Panic`), and an err
                        // action on the forward presents as a non-finite
                        // answer (`CnnFault::NonFinite`).
                        dnnspmv_chaos::failpoint!(dnnspmv_chaos::sites::SERVE_REPR_EXTRACT);
                        #[cfg(feature = "chaos")]
                        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_CNN_FORWARD) {
                            return Some(vec![f32::NAN; cnn.formats.len()]);
                        }
                        match guard.cancel {
                            Some(c) => cnn.predict_proba_with_cancel(matrix, c),
                            None => Some(cnn.predict_proba(matrix)),
                        }
                    }
                }));
                match run {
                    Err(_) => {
                        self.counters.cnn_panic.inc();
                        CnnRungOutcome::Panicked
                    }
                    Ok(None) => {
                        self.counters.cnn_cancelled.inc();
                        CnnRungOutcome::Cancelled
                    }
                    Ok(Some(probs)) => {
                        let (outcome, selection) = self.classify_probs(cnn, &probs);
                        if let Some(sel) = selection {
                            return GuardedSelection {
                                selection: Some(sel),
                                cnn: outcome,
                            };
                        }
                        outcome
                    }
                }
            }
        };
        if cnn_outcome == CnnRungOutcome::Cancelled {
            return GuardedSelection {
                selection: None,
                cnn: cnn_outcome,
            };
        }
        self.fallback_rungs(matrix, cnn_outcome, guard.cancel)
    }

    /// Batched [`SelectorService::select_guarded`]: one CNN forward
    /// pass (a single GEMM per layer) answers every member of
    /// `matrices`, while each member keeps its own cancellation
    /// checkpoint, injected fault, rung outcome and ladder counters —
    /// the serving layer's micro-batcher drives cache-miss requests
    /// through here. Per-member semantics:
    ///
    /// * **Injected faults** stay scoped: a member carrying a fault
    ///   runs the single-request rung alone, so one poisoned request
    ///   cannot sink its batch mates.
    /// * **Extraction** runs per member under that member's `cancel`;
    ///   a deadline expiring there cancels only that member.
    /// * **The shared forward pass** is abandoned only when *every*
    ///   remaining member's deadline has expired (checked between
    ///   layers) — as long as one member still wants the answer, the
    ///   batch keeps going.
    /// * **After the forward pass**, each member re-checks its own
    ///   deadline, then classifies its own probability row through the
    ///   same confidence ladder as the single path.
    ///
    /// Without a CNN every member simply runs the single-request
    /// ladder. `guards` must be parallel to `matrices`.
    pub fn select_batch_guarded<S: Scalar>(
        &self,
        matrices: &[&CooMatrix<S>],
        guards: &[BatchGuard],
    ) -> Vec<GuardedSelection> {
        assert_eq!(
            matrices.len(),
            guards.len(),
            "one guard per batch member required"
        );
        let single = |i: usize| {
            self.select_guarded(
                matrices[i],
                &SelectGuard {
                    skip_cnn: false,
                    cancel: guards[i].cancel,
                    inject: guards[i].inject,
                },
            )
        };
        let Some(cnn) = &self.cnn else {
            return (0..matrices.len()).map(single).collect();
        };
        let mut out: Vec<Option<GuardedSelection>> = vec![None; matrices.len()];
        // Members carrying an injected fault take the single path so
        // the fault stays theirs alone.
        let live: Vec<usize> = (0..matrices.len())
            .filter(|&i| {
                if guards[i].inject != CnnFault::None {
                    out[i] = Some(single(i));
                    false
                } else {
                    true
                }
            })
            .collect();
        // Per-member extraction under the member's own cancel, behind
        // its own unwind boundary: a matrix pathological enough to
        // panic the extractor costs that member its CNN answer (it
        // degrades through its fallback rungs) — never the worker
        // thread carrying the batch.
        let mut batch: Vec<(usize, Vec<dnnspmv_nn::Tensor>)> = Vec::with_capacity(live.len());
        for &i in &live {
            let channels = catch_unwind(AssertUnwindSafe(|| {
                dnnspmv_chaos::failpoint!(dnnspmv_chaos::sites::SERVE_REPR_EXTRACT);
                match guards[i].cancel {
                    Some(c) => crate::samples::make_channels_with_cancel(
                        matrices[i],
                        cnn.config.repr,
                        &cnn.config.repr_config,
                        c,
                    ),
                    None => Some(crate::samples::make_channels(
                        matrices[i],
                        cnn.config.repr,
                        &cnn.config.repr_config,
                    )),
                }
            }));
            match channels {
                Ok(Some(ch)) => batch.push((i, ch)),
                Ok(None) => {
                    self.counters.cnn_cancelled.inc();
                    out[i] = Some(GuardedSelection {
                        selection: None,
                        cnn: CnnRungOutcome::Cancelled,
                    });
                }
                Err(_) => {
                    self.counters.cnn_panic.inc();
                    out[i] = Some(self.fallback_rungs(
                        matrices[i],
                        CnnRungOutcome::Panicked,
                        guards[i].cancel,
                    ));
                }
            }
        }
        if !batch.is_empty() {
            let refs: Vec<&[dnnspmv_nn::Tensor]> =
                batch.iter().map(|(_, ch)| ch.as_slice()).collect();
            // Members without a deadline keep this `false`, so such a
            // batch is never abandoned mid-pass.
            let all_expired = || {
                batch
                    .iter()
                    .all(|(i, _)| guards[*i].cancel.is_some_and(|c| c()))
            };
            let run = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "chaos")]
                if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_CNN_FORWARD) {
                    // Err action ≡ a non-finite shared forward: every
                    // member classifies NaN probabilities and degrades,
                    // the batched twin of `CnnFault::NonFinite`.
                    return Some(
                        refs.iter()
                            .map(|_| {
                                dnnspmv_nn::Tensor::from_vec(
                                    &[cnn.formats.len()],
                                    vec![f32::NAN; cnn.formats.len()],
                                )
                            })
                            .collect(),
                    );
                }
                cnn.net.forward_batch_with_cancel(&refs, &all_expired)
            }));
            match run {
                Err(_) => {
                    // One shared forward pass means one panic demotes
                    // every member — each degrades through its own
                    // fallback rungs, exactly like a single-path panic.
                    for (i, _) in &batch {
                        self.counters.cnn_panic.inc();
                        out[*i] = Some(self.fallback_rungs(
                            matrices[*i],
                            CnnRungOutcome::Panicked,
                            guards[*i].cancel,
                        ));
                    }
                }
                Ok(None) => {
                    for (i, _) in &batch {
                        self.counters.cnn_cancelled.inc();
                        out[*i] = Some(GuardedSelection {
                            selection: None,
                            cnn: CnnRungOutcome::Cancelled,
                        });
                    }
                }
                Ok(Some(logits)) => {
                    for ((i, _), l) in batch.iter().zip(&logits) {
                        // A member whose deadline expired while the
                        // batch was in flight is cancelled alone; its
                        // mates still get their answers.
                        if guards[*i].cancel.is_some_and(|c| c()) {
                            self.counters.cnn_cancelled.inc();
                            out[*i] = Some(GuardedSelection {
                                selection: None,
                                cnn: CnnRungOutcome::Cancelled,
                            });
                            continue;
                        }
                        let probs = dnnspmv_nn::loss::softmax(l.data());
                        let (outcome, selection) = self.classify_probs(cnn, &probs);
                        out[*i] = Some(match selection {
                            Some(sel) => GuardedSelection {
                                selection: Some(sel),
                                cnn: outcome,
                            },
                            None => self.fallback_rungs(matrices[*i], outcome, guards[*i].cancel),
                        });
                    }
                }
            }
        }
        out.into_iter()
            .map(|g| g.expect("every batch member classified"))
            .collect()
    }

    /// Classifies one request's CNN probabilities, counting the rung
    /// outcome: `Answered` (with the winning selection), `NonFinite`,
    /// or `LowConfidence`. Shared by the single and batched paths so
    /// the confidence ladder cannot drift between them.
    fn classify_probs(
        &self,
        cnn: &FormatSelector,
        probs: &[f32],
    ) -> (CnnRungOutcome, Option<Selection>) {
        if probs.iter().any(|p| !p.is_finite()) {
            self.counters.cnn_nonfinite.inc();
            return (CnnRungOutcome::NonFinite, None);
        }
        let (best, &p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("validated selector has a non-empty class set");
        if p < self.confidence_threshold {
            self.counters.cnn_low_confidence.inc();
            return (CnnRungOutcome::LowConfidence, None);
        }
        self.counters.cnn_ok.inc();
        (
            CnnRungOutcome::Answered,
            Some(Selection {
                format: cnn.formats[best],
                source: SelectionSource::Cnn,
                confidence: Some(p),
            }),
        )
    }

    /// The ladder below the CNN rung: tree, then static default. Shared
    /// by the single and batched guarded paths so a demoted request
    /// degrades identically either way. A blown deadline answers
    /// nothing — the caller has already timed out, so running the
    /// fallbacks would only waste a worker.
    fn fallback_rungs<S: Scalar>(
        &self,
        matrix: &CooMatrix<S>,
        cnn_outcome: CnnRungOutcome,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> GuardedSelection {
        if cancel.is_some_and(|c| c()) {
            return GuardedSelection {
                selection: None,
                cnn: cnn_outcome,
            };
        }
        if let Some(tree) = &self.tree {
            match catch_unwind(AssertUnwindSafe(|| tree.predict(matrix))) {
                Ok(format) => {
                    self.counters.tree_ok.inc();
                    return GuardedSelection {
                        selection: Some(Selection {
                            format,
                            source: SelectionSource::Tree,
                            confidence: None,
                        }),
                        cnn: cnn_outcome,
                    };
                }
                Err(_) => {
                    self.counters.tree_panic.inc();
                }
            }
        }
        self.counters.default_used.inc();
        GuardedSelection {
            selection: Some(Selection {
                format: self.default_format,
                source: SelectionSource::Default,
                confidence: None,
            }),
            cnn: cnn_outcome,
        }
    }

    /// Snapshot of the fallback counters.
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            cnn_ok: self.counters.cnn_ok.get(),
            cnn_panic: self.counters.cnn_panic.get(),
            cnn_nonfinite: self.counters.cnn_nonfinite.get(),
            cnn_low_confidence: self.counters.cnn_low_confidence.get(),
            cnn_cancelled: self.counters.cnn_cancelled.get(),
            cnn_skipped: self.counters.cnn_skipped.get(),
            tree_ok: self.counters.tree_ok.get(),
            tree_panic: self.counters.tree_panic.get(),
            default_used: self.counters.default_used.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::SelectorConfig;
    use dnnspmv_gen::{Dataset, DatasetSpec};
    use dnnspmv_nn::{CnnConfig, TrainConfig};
    use dnnspmv_platform::{label_dataset, PlatformModel};
    use dnnspmv_repr::{ReprConfig, ReprKind};

    fn test_config() -> SelectorConfig {
        SelectorConfig {
            repr: ReprKind::Histogram,
            repr_config: ReprConfig {
                image_size: 32,
                hist_rows: 32,
                hist_bins: 16,
            },
            cnn: CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 11,
            },
            train: TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 13,
                ..TrainConfig::default()
            },
            ..SelectorConfig::default()
        }
    }

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetSpec {
            n_base: 60,
            n_augmented: 0,
            dim_min: 48,
            dim_max: 160,
            ..DatasetSpec::tiny(31)
        })
    }

    fn trained_pair() -> (FormatSelector, DtSelector, Dataset) {
        let data = dataset();
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let (cnn, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            platform.formats().to_vec(),
            &test_config(),
        );
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        (cnn, dt, data)
    }

    #[test]
    fn healthy_service_answers_from_the_cnn() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        for m in data.matrices.iter().take(8) {
            let sel = svc.select(m);
            assert_eq!(sel.source, SelectionSource::Cnn);
            assert!(sel.confidence.unwrap() > 0.0);
        }
        let r = svc.report();
        assert_eq!(r.cnn_ok, 8);
        assert_eq!(
            r.tree_ok + r.default_used + r.cnn_panic + r.cnn_nonfinite,
            0
        );
    }

    #[test]
    fn poisoned_cnn_degrades_to_tree_then_counts_it() {
        let (mut cnn, dt, data) = trained_pair();
        // Blow up the head weights: logits overflow, softmax goes NaN.
        for layer in &mut cnn.net.head.layers {
            if let dnnspmv_nn::Layer::Dense(d) = layer {
                for v in d.weight.data_mut() {
                    *v = 1e30;
                }
            }
        }
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Tree);
        let r = svc.report();
        assert_eq!(r.cnn_nonfinite, 1);
        assert_eq!(r.tree_ok, 1);
        assert_eq!(r.cnn_ok, 0);
    }

    #[test]
    fn no_predictors_still_yields_the_default_format() {
        let svc = SelectorService::new(None, None).unwrap();
        let data = dataset();
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Default);
        assert_eq!(sel.format, SparseFormat::Csr);
        assert_eq!(svc.report().default_used, 1);
    }

    #[test]
    fn unreachable_confidence_threshold_falls_through() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt))
            .unwrap()
            .with_confidence_threshold(1.1);
        let sel = svc.select(&data.matrices[0]);
        assert_eq!(sel.source, SelectionSource::Tree);
        let r = svc.report();
        assert_eq!(r.cnn_low_confidence, 1);
        assert_eq!(r.tree_ok, 1);
    }

    #[test]
    fn guarded_select_classifies_injected_faults() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        let m = &data.matrices[0];
        // Injected panic: demoted to the tree, outcome recorded.
        let g = svc.select_guarded(
            m,
            &SelectGuard {
                inject: CnnFault::Panic,
                ..Default::default()
            },
        );
        assert_eq!(g.cnn, CnnRungOutcome::Panicked);
        assert_eq!(g.selection.unwrap().source, SelectionSource::Tree);
        // Injected non-finite probabilities.
        let g = svc.select_guarded(
            m,
            &SelectGuard {
                inject: CnnFault::NonFinite,
                ..Default::default()
            },
        );
        assert_eq!(g.cnn, CnnRungOutcome::NonFinite);
        assert_eq!(g.selection.unwrap().source, SelectionSource::Tree);
        // Breaker-style demotion: CNN skipped, tree answers.
        let g = svc.select_guarded(
            m,
            &SelectGuard {
                skip_cnn: true,
                ..Default::default()
            },
        );
        assert_eq!(g.cnn, CnnRungOutcome::Skipped);
        assert_eq!(g.selection.unwrap().source, SelectionSource::Tree);
        // Expired deadline: no answer at all.
        let g = svc.select_guarded(
            m,
            &SelectGuard {
                cancel: Some(&|| true),
                ..Default::default()
            },
        );
        assert_eq!(g.cnn, CnnRungOutcome::Cancelled);
        assert!(g.selection.is_none());
        let r = svc.report();
        assert_eq!(
            (r.cnn_panic, r.cnn_nonfinite, r.cnn_skipped, r.cnn_cancelled),
            (1, 1, 1, 1)
        );
        assert_eq!(r.tree_ok, 3);
        assert_eq!(r.answered(), 3);
        // A live cancel hook that never fires matches plain select.
        let g = svc.select_guarded(
            m,
            &SelectGuard {
                cancel: Some(&|| false),
                ..Default::default()
            },
        );
        assert_eq!(g.cnn, CnnRungOutcome::Answered);
        assert_eq!(g.selection.unwrap().source, SelectionSource::Cnn);
    }

    #[test]
    fn batched_guarded_select_matches_single_path() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        let ms: Vec<&CooMatrix<f32>> = data.matrices.iter().take(6).collect();
        let guards = vec![BatchGuard::default(); ms.len()];
        let got = svc.select_batch_guarded(&ms, &guards);
        assert_eq!(got.len(), ms.len());
        for (m, g) in ms.iter().zip(&got) {
            assert_eq!(g.cnn, CnnRungOutcome::Answered);
            let batched = g.selection.expect("healthy batch answers");
            let single = svc.select(m);
            // The packed batch GEMM may differ from the single pass in
            // the last float ulp, so compare decisions, not bits.
            assert_eq!(batched.format, single.format);
            assert_eq!(batched.source, SelectionSource::Cnn);
            let (b, s) = (batched.confidence.unwrap(), single.confidence.unwrap());
            assert!((b - s).abs() <= 1e-4, "{b} vs {s}");
        }
        assert_eq!(svc.report().cnn_ok, 12);
        assert!(svc.select_batch_guarded::<f32>(&[], &[]).is_empty());
    }

    #[test]
    fn batched_guarded_select_scopes_faults_and_cancellations_per_member() {
        let (cnn, dt, data) = trained_pair();
        let svc = SelectorService::new(Some(cnn), Some(dt)).unwrap();
        let ms: Vec<&CooMatrix<f32>> = data.matrices.iter().take(4).collect();
        let expired = || true;
        let guards = [
            BatchGuard::default(),
            BatchGuard {
                inject: CnnFault::Panic,
                ..Default::default()
            },
            BatchGuard {
                cancel: Some(&expired),
                ..Default::default()
            },
            BatchGuard {
                inject: CnnFault::NonFinite,
                ..Default::default()
            },
        ];
        let got = svc.select_batch_guarded(&ms, &guards);
        // Healthy member: answered by the CNN despite its batch mates.
        assert_eq!(got[0].cnn, CnnRungOutcome::Answered);
        assert_eq!(got[0].selection.unwrap().source, SelectionSource::Cnn);
        // Faulted members degrade to the tree alone.
        assert_eq!(got[1].cnn, CnnRungOutcome::Panicked);
        assert_eq!(got[1].selection.unwrap().source, SelectionSource::Tree);
        assert_eq!(got[3].cnn, CnnRungOutcome::NonFinite);
        assert_eq!(got[3].selection.unwrap().source, SelectionSource::Tree);
        // The expired member is cancelled without an answer.
        assert_eq!(got[2].cnn, CnnRungOutcome::Cancelled);
        assert!(got[2].selection.is_none());
        let r = svc.report();
        assert_eq!(
            (r.cnn_ok, r.cnn_panic, r.cnn_nonfinite, r.cnn_cancelled),
            (1, 1, 1, 1)
        );
        assert_eq!(r.tree_ok, 2);
        assert_eq!(r.answered(), 3);
    }

    #[test]
    fn reports_merge_field_wise() {
        let a = ServiceReport {
            cnn_ok: 3,
            tree_ok: 1,
            ..Default::default()
        };
        let b = ServiceReport {
            cnn_ok: 2,
            default_used: 4,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.cnn_ok, 5);
        assert_eq!(m.tree_ok, 1);
        assert_eq!(m.default_used, 4);
        assert_eq!(m.answered(), 10);
    }

    #[test]
    fn invalid_predictor_is_rejected_at_construction() {
        let (mut cnn, _, _) = trained_pair();
        cnn.formats.clear();
        assert!(SelectorService::new(Some(cnn), None).is_err());
    }
}
