//! Fingerprint-keyed decision cache — stage A of the serving hot path.
//!
//! Production selector traffic is highly repetitive: the same matrices
//! recur, yet each request pays full representation extraction plus a
//! CNN forward pass (~0.4 ms) for a decision that depends only on the
//! matrix's *structure*. The cache keys CNN-answered [`Selection`]s by
//! a cheap structural fingerprint ([`matrix_fingerprint`]) so repeat
//! traffic resolves in microseconds on the submitting thread, without
//! ever entering the admission queue.
//!
//! Design points:
//!
//! * **Sharded LRU** — a power-of-two number of shards, each a
//!   lock-protected constant-time LRU (hash map into an intrusive
//!   slab list), so concurrent submitters rarely contend on one lock.
//! * **Generation-keyed** — every entry records the model generation
//!   that produced it; a lookup under a newer generation reports
//!   [`CacheLookup::Stale`] and drops the entry, so a hot model reload
//!   can never serve a decision from a retired model.
//! * **Injected time** — TTL expiry compares the caller's clock
//!   reading ([`dnnspmv_obs::ClockFn`] nanoseconds), so tests drive
//!   expiry with a fake clock and no sleeps.
//! * **Only CNN answers are cached** — the serving layer inserts only
//!   rung-`Answered` selections; degraded tree/default answers (breaker
//!   open, CNN fault) stay uncached so recovery is visible immediately.
//!   That policy lives in the server; the cache stores what it is
//!   given.
//!
//! The fingerprint hashes exact shape and nonzero counts, a
//! log-bucketed row-length histogram, and a strided sample of
//! coordinates (exhaustive for `nnz ≤ 2048`). Two structurally
//! different matrices can in principle collide, in which case the cache
//! returns a format decision computed for a look-alike — a performance
//! approximation, never a correctness hazard, exactly like the CNN's
//! own down-sampled input representations.

use crate::service::Selection;
use dnnspmv_fingerprint::Fnv1a64;
use dnnspmv_sparse::{CooMatrix, Scalar};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Decision-cache tuning (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total entries across all shards; 0 disables the cache.
    pub capacity: usize,
    /// Shard count (rounded up to a power of two, min 1).
    pub shards: usize,
    /// Entry time-to-live; `None` caches until evicted or invalidated.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    /// Disabled. The serving hot path is opt-in: a deployment that
    /// wants cached decisions sets a capacity explicitly (see
    /// [`CacheConfig::enabled`]).
    fn default() -> Self {
        Self {
            capacity: 0,
            shards: 8,
            ttl: None,
        }
    }
}

impl CacheConfig {
    /// An enabled cache of `capacity` entries with default sharding and
    /// no TTL.
    pub fn enabled(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Whether this configuration caches anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

/// Outcome of one cache probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheLookup {
    /// A live entry from the current model generation.
    Hit(Selection),
    /// No entry under this fingerprint.
    Miss,
    /// An entry existed but was produced by a retired model generation;
    /// it has been dropped.
    Stale,
    /// An entry existed but outlived its TTL; it has been dropped.
    Expired,
}

/// Outcome of one cache insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheInsert {
    /// A new entry was added.
    Inserted,
    /// A new entry was added and the shard's LRU entry was evicted to
    /// make room.
    InsertedEvicting,
    /// An entry under this fingerprint already existed and was
    /// refreshed in place.
    Updated,
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    fp: u64,
    generation: u64,
    inserted_at: u64,
    sel: Selection,
    prev: usize,
    next: usize,
}

/// One shard: hash map from fingerprint to slab slot plus an intrusive
/// doubly-linked recency list over the slab (head = most recent). All
/// operations are O(1).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            ..Self::default()
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    fn remove(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.slab[i].fp);
        self.free.push(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Sharded, generation-keyed LRU over format decisions (module docs).
#[derive(Debug)]
pub struct DecisionCache {
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    per_shard_capacity: usize,
    ttl_ns: Option<u64>,
}

impl DecisionCache {
    /// Builds a cache, or `None` when `cfg` disables caching.
    pub fn new(cfg: &CacheConfig) -> Option<Self> {
        if !cfg.is_enabled() {
            return None;
        }
        let shards = cfg.shards.clamp(1, cfg.capacity).next_power_of_two();
        Some(Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: shards as u64 - 1,
            per_shard_capacity: cfg.capacity.div_ceil(shards),
            ttl_ns: cfg.ttl.map(|d| d.as_nanos() as u64),
        })
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        // Fold the high half in so shard choice does not ride on the
        // low bits alone.
        &self.shards[((fp ^ (fp >> 32)) & self.shard_mask) as usize]
    }

    /// Probes for `fp` under the live model `generation` at time `now`
    /// (clock nanoseconds). Stale-generation and TTL-expired entries
    /// are dropped on sight and reported distinctly so the serving
    /// layer can count them.
    pub fn lookup(&self, fp: u64, generation: u64, now: u64) -> CacheLookup {
        let mut s = self.shard(fp).lock().expect("cache shard lock");
        let Some(&i) = s.map.get(&fp) else {
            return CacheLookup::Miss;
        };
        if s.slab[i].generation != generation {
            s.remove(i);
            return CacheLookup::Stale;
        }
        if self
            .ttl_ns
            .is_some_and(|ttl| now.saturating_sub(s.slab[i].inserted_at) >= ttl)
        {
            s.remove(i);
            return CacheLookup::Expired;
        }
        s.unlink(i);
        s.push_front(i);
        CacheLookup::Hit(s.slab[i].sel)
    }

    /// Inserts (or refreshes) the decision for `fp` produced by model
    /// `generation` at time `now`, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, fp: u64, generation: u64, now: u64, sel: Selection) -> CacheInsert {
        let mut s = self.shard(fp).lock().expect("cache shard lock");
        if let Some(&i) = s.map.get(&fp) {
            s.slab[i] = Node {
                generation,
                inserted_at: now,
                sel,
                ..s.slab[i]
            };
            s.unlink(i);
            s.push_front(i);
            return CacheInsert::Updated;
        }
        let evicting = s.len() >= self.per_shard_capacity;
        if evicting {
            let lru = s.tail;
            s.remove(lru);
        }
        let node = Node {
            fp,
            generation,
            inserted_at: now,
            sel,
            prev: NIL,
            next: NIL,
        };
        let i = match s.free.pop() {
            Some(i) => {
                s.slab[i] = node;
                i
            }
            None => {
                s.slab.push(node);
                s.slab.len() - 1
            }
        };
        s.map.insert(fp, i);
        s.push_front(i);
        if evicting {
            CacheInsert::InsertedEvicting
        } else {
            CacheInsert::Inserted
        }
    }

    /// Live entries across all shards (locks each shard in turn; not a
    /// hot-path call).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts (capacity tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .collect()
    }

    /// The capacity each shard enforces.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }
}

/// How many coordinates [`matrix_fingerprint`] samples: the stride is
/// chosen so at most this many `(row, col)` pairs are hashed, and every
/// pair is hashed when `nnz` is at or below it.
pub const FINGERPRINT_COORD_SAMPLE: usize = 2048;

/// Structural fingerprint of a sparse matrix: FNV-1a64 over exact
/// `(nrows, ncols, nnz)`, a log2-bucketed histogram of nonzero-row
/// lengths (one O(nnz) run-length pass over the canonically row-major
/// sorted entries), and a strided sample of `(row, col)` coordinates.
/// Values are deliberately excluded — every representation the CNN
/// consumes depends only on the sparsity pattern, so two matrices with
/// equal structure genuinely warrant the same decision.
pub fn matrix_fingerprint<S: Scalar>(m: &CooMatrix<S>) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_u64(m.nrows() as u64);
    h.write_u64(m.ncols() as u64);
    h.write_u64(m.nnz() as u64);
    let rows = m.row_indices();
    let cols = m.col_indices();
    // Row-length histogram in 33 log2 buckets (lengths 1..=u32::MAX).
    // Entries are strictly row-major sorted (the CooMatrix canonical
    // invariant), so run lengths of equal row indices are row lengths;
    // empty rows contribute nothing but are captured by nrows + nnz.
    let mut hist = [0u64; 33];
    let bucket = |run: u64| (63 - run.leading_zeros()) as usize;
    if let Some(&first) = rows.first() {
        let mut prev = first;
        let mut run = 0u64;
        for &r in rows {
            if r == prev {
                run += 1;
            } else {
                hist[bucket(run)] += 1;
                prev = r;
                run = 1;
            }
        }
        hist[bucket(run)] += 1;
    }
    for b in hist {
        h.write_u64(b);
    }
    let stride = rows.len().div_ceil(FINGERPRINT_COORD_SAMPLE).max(1);
    let mut i = 0;
    while i < rows.len() {
        h.write_u32(rows[i]);
        h.write_u32(cols[i]);
        i += stride;
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SelectionSource;
    use dnnspmv_sparse::SparseFormat;
    use proptest::prelude::*;

    fn sel(format: SparseFormat, confidence: f32) -> Selection {
        Selection {
            format,
            source: SelectionSource::Cnn,
            confidence: Some(confidence),
        }
    }

    fn small_cache(capacity: usize, shards: usize, ttl: Option<Duration>) -> DecisionCache {
        DecisionCache::new(&CacheConfig {
            capacity,
            shards,
            ttl,
        })
        .expect("enabled config")
    }

    #[test]
    fn disabled_config_builds_no_cache() {
        assert!(DecisionCache::new(&CacheConfig::default()).is_none());
        assert!(!CacheConfig::default().is_enabled());
        assert!(CacheConfig::enabled(16).is_enabled());
    }

    #[test]
    fn hit_returns_what_was_inserted() {
        let c = small_cache(8, 1, None);
        let s = sel(SparseFormat::Dia, 0.9);
        assert_eq!(c.insert(7, 0, 0, s), CacheInsert::Inserted);
        assert_eq!(c.lookup(7, 0, 0), CacheLookup::Hit(s));
        assert_eq!(c.lookup(8, 0, 0), CacheLookup::Miss);
    }

    #[test]
    fn generation_bump_invalidates_all_prior_entries() {
        let c = small_cache(16, 2, None);
        for fp in 0..10u64 {
            c.insert(fp, 0, 0, sel(SparseFormat::Csr, 0.8));
        }
        assert_eq!(c.len(), 10);
        // Every generation-0 entry is reported stale (and dropped)
        // under generation 1 — a hot reload never serves a retired
        // model's decision.
        for fp in 0..10u64 {
            assert_eq!(c.lookup(fp, 1, 0), CacheLookup::Stale);
            assert_eq!(c.lookup(fp, 1, 0), CacheLookup::Miss);
        }
        assert!(c.is_empty());
        // Re-inserted under the new generation, hits resume.
        c.insert(3, 1, 0, sel(SparseFormat::Ell, 0.7));
        assert!(matches!(c.lookup(3, 1, 0), CacheLookup::Hit(_)));
    }

    #[test]
    fn ttl_expiry_uses_the_injected_clock() {
        let c = small_cache(8, 1, Some(Duration::from_nanos(100)));
        c.insert(1, 0, 1000, sel(SparseFormat::Csr, 0.9));
        assert!(matches!(c.lookup(1, 0, 1099), CacheLookup::Hit(_)));
        assert_eq!(c.lookup(1, 0, 1100), CacheLookup::Expired);
        assert_eq!(c.lookup(1, 0, 1100), CacheLookup::Miss);
    }

    #[test]
    fn eviction_honors_capacity_per_shard_in_lru_order() {
        let c = small_cache(4, 1, None);
        assert_eq!(c.per_shard_capacity(), 4);
        for fp in 0..4u64 {
            assert_eq!(
                c.insert(fp, 0, 0, sel(SparseFormat::Csr, 0.5)),
                CacheInsert::Inserted
            );
        }
        // Touch 0 so 1 becomes the LRU entry.
        assert!(matches!(c.lookup(0, 0, 0), CacheLookup::Hit(_)));
        assert_eq!(
            c.insert(9, 0, 0, sel(SparseFormat::Coo, 0.6)),
            CacheInsert::InsertedEvicting
        );
        assert_eq!(c.len(), 4);
        assert_eq!(c.lookup(1, 0, 0), CacheLookup::Miss, "LRU entry evicted");
        for fp in [0u64, 2, 3, 9] {
            assert!(matches!(c.lookup(fp, 0, 0), CacheLookup::Hit(_)), "{fp}");
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_respects_capacity() {
        let c = small_cache(100, 6, None);
        assert_eq!(c.shard_lens().len(), 8);
        assert_eq!(c.per_shard_capacity(), 13);
        // A tiny capacity never spreads across more shards than
        // entries.
        let c = small_cache(2, 64, None);
        assert_eq!(c.shard_lens().len(), 2);
    }

    fn diag(n: usize) -> CooMatrix<f32> {
        let t: Vec<_> = (0..n).map(|i| (i, i, 1.0f32)).collect();
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn fingerprint_separates_structure_and_ignores_values() {
        let a = diag(64);
        let b = diag(64);
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&b));
        // Same pattern, different values: same structural fingerprint.
        let t: Vec<_> = (0..64).map(|i| (i, i, 2.5f32)).collect();
        let c = CooMatrix::from_triplets(64, 64, &t).unwrap();
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&c));
        // Different shape, nnz, or coordinates: different fingerprints.
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&diag(65)));
        let mut t: Vec<_> = (0..64).map(|i| (i, i, 1.0f32)).collect();
        t.push((0, 63, 1.0));
        let d = CooMatrix::from_triplets(64, 64, &t).unwrap();
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&d));
        let t: Vec<_> = (0..64).map(|i| (i, 63 - i, 1.0f32)).collect();
        let e = CooMatrix::from_triplets(64, 64, &t).unwrap();
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&e));
    }

    /// Digest-stability pin: the fingerprint keys persisted across
    /// serving sessions (and asserted against in benchmarks), so a
    /// refactor that changes it must be deliberate.
    #[test]
    fn fingerprint_digest_is_stable() {
        assert_eq!(matrix_fingerprint(&diag(8)), 0xecac_26c7_09bd_cde5);
    }

    /// Reference model for one shard's LRU: a Vec in recency order.
    #[derive(Default)]
    struct ModelLru {
        entries: Vec<(u64, u64, u64, Selection)>, // (fp, gen, at, sel) most-recent-first
        cap: usize,
    }

    impl ModelLru {
        fn lookup(&mut self, fp: u64, generation: u64, now: u64, ttl: Option<u64>) -> CacheLookup {
            let Some(i) = self.entries.iter().position(|e| e.0 == fp) else {
                return CacheLookup::Miss;
            };
            let e = self.entries[i];
            if e.1 != generation {
                self.entries.remove(i);
                return CacheLookup::Stale;
            }
            if ttl.is_some_and(|t| now.saturating_sub(e.2) >= t) {
                self.entries.remove(i);
                return CacheLookup::Expired;
            }
            self.entries.remove(i);
            self.entries.insert(0, e);
            CacheLookup::Hit(e.3)
        }

        fn insert(&mut self, fp: u64, generation: u64, now: u64, sel: Selection) -> CacheInsert {
            if let Some(i) = self.entries.iter().position(|e| e.0 == fp) {
                self.entries.remove(i);
                self.entries.insert(0, (fp, generation, now, sel));
                return CacheInsert::Updated;
            }
            let evicting = self.entries.len() >= self.cap;
            if evicting {
                self.entries.pop();
            }
            self.entries.insert(0, (fp, generation, now, sel));
            if evicting {
                CacheInsert::InsertedEvicting
            } else {
                CacheInsert::Inserted
            }
        }
    }

    proptest! {
        /// A single-shard cache behaves exactly like the obvious
        /// Vec-based LRU model under arbitrary interleavings of
        /// lookups, inserts, generation bumps and clock advances.
        #[test]
        fn single_shard_matches_reference_lru(
            ops in proptest::collection::vec((0u8..4, 0u64..12), 1..200),
            cap in 1usize..6,
            ttl_raw in 0u64..50,
        ) {
            // 0 means "no TTL"; the vendored proptest has no option strategy.
            let ttl = (ttl_raw > 0).then_some(ttl_raw);
            let cache = small_cache(cap, 1, ttl.map(Duration::from_nanos));
            let mut model = ModelLru { cap, ..Default::default() };
            let (mut generation, mut now) = (0u64, 0u64);
            let mut fmt = 0u32;
            for (op, fp) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(
                            cache.lookup(fp, generation, now),
                            model.lookup(fp, generation, now, ttl)
                        );
                    }
                    1 => {
                        // Distinct payloads so a hit proves which
                        // insert it came from.
                        fmt += 1;
                        let s = sel(
                            [SparseFormat::Csr, SparseFormat::Coo, SparseFormat::Dia][fmt as usize % 3],
                            fmt as f32,
                        );
                        prop_assert_eq!(
                            cache.insert(fp, generation, now, s),
                            model.insert(fp, generation, now, s)
                        );
                    }
                    2 => generation += 1,
                    _ => now += fp + 1,
                }
                prop_assert_eq!(cache.len(), model.entries.len());
                prop_assert!(cache.len() <= cap);
            }
        }
    }
}
