//! Matrix → CNN sample conversion (the "normalisation" step).

use dnnspmv_nn::{Sample, Tensor};
use dnnspmv_repr::{MatrixRepr, ReprConfig, ReprKind};
use dnnspmv_sparse::{CooMatrix, Scalar};
use rayon::prelude::*;

/// Converts one matrix to CNN input channels.
pub fn make_channels<S: Scalar>(
    matrix: &CooMatrix<S>,
    kind: ReprKind,
    cfg: &ReprConfig,
) -> Vec<Tensor> {
    MatrixRepr::extract(matrix, kind, cfg)
        .channels
        .into_iter()
        .map(|im| {
            let (h, w) = (im.height(), im.width());
            Tensor::from_vec(&[h, w], im.into_vec())
        })
        .collect()
}

/// [`make_channels`] with a cooperative-cancellation checkpoint
/// threaded into the extraction loops; `None` once `cancel` reports
/// `true`.
pub fn make_channels_with_cancel<S: Scalar>(
    matrix: &CooMatrix<S>,
    kind: ReprKind,
    cfg: &ReprConfig,
    cancel: &dyn Fn() -> bool,
) -> Option<Vec<Tensor>> {
    Some(
        MatrixRepr::extract_with_cancel(matrix, kind, cfg, cancel)?
            .channels
            .into_iter()
            .map(|im| {
                let (h, w) = (im.height(), im.width());
                Tensor::from_vec(&[h, w], im.into_vec())
            })
            .collect(),
    )
}

/// Converts matrices plus labels to training samples, in parallel.
///
/// # Panics
/// Panics if `matrices` and `labels` differ in length.
pub fn make_samples<S: Scalar>(
    matrices: &[CooMatrix<S>],
    labels: &[usize],
    kind: ReprKind,
    cfg: &ReprConfig,
) -> Vec<Sample> {
    assert_eq!(matrices.len(), labels.len(), "matrix/label count mismatch");
    matrices
        .par_iter()
        .zip(labels.par_iter())
        .map(|(m, &label)| Sample {
            channels: make_channels(m, kind, cfg),
            label,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: usize) -> CooMatrix<f32> {
        let t: Vec<_> = (0..n).map(|i| (i, i, 1.0f32)).collect();
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn channels_have_configured_shape() {
        let cfg = ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        };
        let ch = make_channels(&diag(100), ReprKind::Histogram, &cfg);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch[0].shape(), &[32, 16]);
    }

    #[test]
    fn samples_pair_matrices_with_labels() {
        let mats = vec![diag(20), diag(30)];
        let cfg = ReprConfig {
            image_size: 16,
            hist_rows: 16,
            hist_bins: 8,
        };
        let s = make_samples(&mats, &[1, 3], ReprKind::Binary, &cfg);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, 1);
        assert_eq!(s[1].label, 3);
        assert_eq!(s[0].channels.len(), 1);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn length_mismatch_panics() {
        let cfg = ReprConfig::default();
        let _ = make_samples(&[diag(10)], &[0, 1], ReprKind::Binary, &cfg);
    }
}
