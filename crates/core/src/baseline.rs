//! The decision-tree baseline packaged as a drop-in selector — the
//! "DT" columns of Tables 2 and 3.

use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use dnnspmv_tree::{features, DecisionTree, TreeConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// SMAT-style decision-tree format selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtSelector {
    tree: DecisionTree,
    /// Class index → format mapping.
    pub formats: Vec<SparseFormat>,
}

impl DtSelector {
    /// Trains on matrices with class labels (indices into `formats`).
    pub fn train<S: Scalar>(
        matrices: &[CooMatrix<S>],
        labels: &[usize],
        formats: Vec<SparseFormat>,
    ) -> Self {
        assert_eq!(matrices.len(), labels.len(), "matrix/label count mismatch");
        let x: Vec<Vec<f64>> = matrices.par_iter().map(|m| features(m)).collect();
        let tree = DecisionTree::train(&x, labels, TreeConfig::new(formats.len()));
        Self { tree, formats }
    }

    /// Predicts the best format for a matrix.
    pub fn predict<S: Scalar>(&self, matrix: &CooMatrix<S>) -> SparseFormat {
        self.formats[self.predict_label(matrix)]
    }

    /// Predicts the class label.
    pub fn predict_label<S: Scalar>(&self, matrix: &CooMatrix<S>) -> usize {
        self.tree.predict(&features(matrix))
    }

    /// Accuracy against reference labels.
    pub fn accuracy<S: Scalar>(&self, matrices: &[CooMatrix<S>], labels: &[usize]) -> f64 {
        if matrices.is_empty() {
            return 0.0;
        }
        let hits: usize = matrices
            .par_iter()
            .zip(labels.par_iter())
            .filter(|(m, &l)| self.predict_label(*m) == l)
            .count();
        hits as f64 / matrices.len() as f64
    }

    /// `confusion[truth][predicted]` over a labelled set.
    pub fn confusion<S: Scalar>(
        &self,
        matrices: &[CooMatrix<S>],
        labels: &[usize],
    ) -> Vec<Vec<usize>> {
        let k = self.formats.len();
        let preds: Vec<(usize, usize)> = matrices
            .par_iter()
            .zip(labels.par_iter())
            .map(|(m, &l)| (l, self.predict_label(m)))
            .collect();
        let mut cm = vec![vec![0usize; k]; k];
        for (t, p) in preds {
            cm[t][p] += 1;
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_gen::{Dataset, DatasetSpec};
    use dnnspmv_platform::{label_dataset, PlatformModel};

    #[test]
    fn dt_learns_cost_model_labels_well_in_sample() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 120,
            n_augmented: 0,
            dim_min: 48,
            dim_max: 160,
            ..DatasetSpec::tiny(5)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let acc = dt.accuracy(&data.matrices, &labels);
        assert!(acc > 0.8, "in-sample accuracy only {acc}");
    }

    #[test]
    fn predictions_come_from_the_format_set() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 40,
            n_augmented: 0,
            ..DatasetSpec::tiny(6)
        });
        let platform = PlatformModel::nvidia_gpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        for m in &data.matrices {
            assert!(platform.formats().contains(&dt.predict(m)));
        }
    }

    #[test]
    fn confusion_matrix_totals_match() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 40,
            n_augmented: 0,
            ..DatasetSpec::tiny(7)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let cm = dt.confusion(&data.matrices, &labels);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, data.matrices.len());
    }

    #[test]
    fn serialises_round_trip() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 30,
            n_augmented: 0,
            ..DatasetSpec::tiny(8)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let json = serde_json::to_string(&dt).unwrap();
        let back: DtSelector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dt);
    }
}
