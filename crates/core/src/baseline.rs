//! The decision-tree baseline packaged as a drop-in selector — the
//! "DT" columns of Tables 2 and 3.

use crate::error::SelectorError;
use dnnspmv_nn::serialize::{fnv1a64, read_envelope_path, write_envelope_atomic};
use dnnspmv_nn::NnError;
use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use dnnspmv_tree::{features, DecisionTree, TreeConfig, NUM_FEATURES};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Envelope kind tag for persisted [`DtSelector`]s.
pub const KIND_DT_SELECTOR: &str = "dt-selector";

/// SMAT-style decision-tree format selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtSelector {
    tree: DecisionTree,
    /// Class index → format mapping.
    pub formats: Vec<SparseFormat>,
}

impl DtSelector {
    /// Trains on matrices with class labels (indices into `formats`).
    pub fn train<S: Scalar>(
        matrices: &[CooMatrix<S>],
        labels: &[usize],
        formats: Vec<SparseFormat>,
    ) -> Self {
        assert_eq!(matrices.len(), labels.len(), "matrix/label count mismatch");
        let x: Vec<Vec<f64>> = matrices.par_iter().map(|m| features(m)).collect();
        let tree = DecisionTree::train(&x, labels, TreeConfig::new(formats.len()));
        Self { tree, formats }
    }

    /// Predicts the best format for a matrix.
    pub fn predict<S: Scalar>(&self, matrix: &CooMatrix<S>) -> SparseFormat {
        self.formats[self.predict_label(matrix)]
    }

    /// Predicts the class label.
    pub fn predict_label<S: Scalar>(&self, matrix: &CooMatrix<S>) -> usize {
        self.tree.predict(&features(matrix))
    }

    /// Accuracy against reference labels.
    pub fn accuracy<S: Scalar>(&self, matrices: &[CooMatrix<S>], labels: &[usize]) -> f64 {
        if matrices.is_empty() {
            return 0.0;
        }
        let hits: usize = matrices
            .par_iter()
            .zip(labels.par_iter())
            .filter(|(m, &l)| self.predict_label(*m) == l)
            .count();
        hits as f64 / matrices.len() as f64
    }

    /// Internal consistency of a (possibly deserialized) selector:
    /// the tree's structure must validate, its feature width must be
    /// the extractor's [`NUM_FEATURES`], and its class count must
    /// match the format set — the invariants that keep
    /// [`Self::predict`] panic-free on any input matrix.
    pub fn validate(&self) -> Result<(), SelectorError> {
        self.tree
            .validate()
            .map_err(|m| SelectorError::Nn(NnError::InvalidModel(m)))?;
        if self.formats.is_empty() {
            return Err(SelectorError::Invalid("empty format set".into()));
        }
        if self.tree.n_features() != NUM_FEATURES {
            return Err(SelectorError::Invalid(format!(
                "tree expects {} features but the extractor produces {NUM_FEATURES}",
                self.tree.n_features()
            )));
        }
        if self.tree.n_classes() != self.formats.len() {
            return Err(SelectorError::Invalid(format!(
                "tree predicts {} classes but the format set has {}",
                self.tree.n_classes(),
                self.formats.len()
            )));
        }
        Ok(())
    }

    /// Saves the selector as an enveloped, checksummed JSON artefact,
    /// written atomically. Does not validate (see
    /// [`crate::FormatSelector::save`] for the rationale).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SelectorError> {
        let fp = fnv1a64(format!("dt|{:?}", self.formats).as_bytes());
        write_envelope_atomic(KIND_DT_SELECTOR, fp, self, path).map_err(SelectorError::from)
    }

    /// Loads and validates a selector saved by [`Self::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SelectorError> {
        let (sel, _): (Self, u64) = read_envelope_path(KIND_DT_SELECTOR, path)?;
        sel.validate()?;
        Ok(sel)
    }

    /// `confusion[truth][predicted]` over a labelled set.
    pub fn confusion<S: Scalar>(
        &self,
        matrices: &[CooMatrix<S>],
        labels: &[usize],
    ) -> Vec<Vec<usize>> {
        let k = self.formats.len();
        let preds: Vec<(usize, usize)> = matrices
            .par_iter()
            .zip(labels.par_iter())
            .map(|(m, &l)| (l, self.predict_label(m)))
            .collect();
        let mut cm = vec![vec![0usize; k]; k];
        for (t, p) in preds {
            cm[t][p] += 1;
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_gen::{Dataset, DatasetSpec};
    use dnnspmv_platform::{label_dataset, PlatformModel};

    #[test]
    fn dt_learns_cost_model_labels_well_in_sample() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 120,
            n_augmented: 0,
            dim_min: 48,
            dim_max: 160,
            ..DatasetSpec::tiny(5)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let acc = dt.accuracy(&data.matrices, &labels);
        assert!(acc > 0.8, "in-sample accuracy only {acc}");
    }

    #[test]
    fn predictions_come_from_the_format_set() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 40,
            n_augmented: 0,
            ..DatasetSpec::tiny(6)
        });
        let platform = PlatformModel::nvidia_gpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        for m in &data.matrices {
            assert!(platform.formats().contains(&dt.predict(m)));
        }
    }

    #[test]
    fn confusion_matrix_totals_match() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 40,
            n_augmented: 0,
            ..DatasetSpec::tiny(7)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let cm = dt.confusion(&data.matrices, &labels);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, data.matrices.len());
    }

    #[test]
    fn serialises_round_trip() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 30,
            n_augmented: 0,
            ..DatasetSpec::tiny(8)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let json = serde_json::to_string(&dt).unwrap();
        let back: DtSelector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dt);
    }

    #[test]
    fn enveloped_save_load_validates() {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 30,
            n_augmented: 0,
            ..DatasetSpec::tiny(9)
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
        let dir = std::env::temp_dir().join("dnnspmv_dt_robust");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("dt.json");
        dt.save(&p).unwrap();
        let back = DtSelector::load(&p).unwrap();
        assert_eq!(back, dt);

        // Format set shrunk below the tree's class count: rejected at
        // load even though the envelope is intact.
        let mut broken = dt.clone();
        broken.formats.pop();
        broken.save(&p).unwrap();
        let err = DtSelector::load(&p).unwrap_err();
        assert!(matches!(err, SelectorError::Invalid(_)), "{err}");

        // Truncated file: typed parse error.
        let text = {
            dt.save(&p).unwrap();
            std::fs::read_to_string(&p).unwrap()
        };
        std::fs::write(&p, &text[..text.len() / 2]).unwrap();
        assert!(DtSelector::load(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
