//! Typed errors for selector persistence and serving.

use dnnspmv_nn::NnError;
use std::fmt;

/// What can go wrong constructing, loading or serving a selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorError {
    /// A network-layer failure (envelope, checksum, validation, …).
    Nn(NnError),
    /// Filesystem failure outside the nn envelope machinery.
    Io(String),
    /// The artefact parsed and checksummed but is internally
    /// inconsistent as a *selector* (format set vs network output,
    /// representation vs input channels, …).
    Invalid(String),
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectorError::Nn(e) => write!(f, "{e}"),
            SelectorError::Io(m) => write!(f, "i/o: {m}"),
            SelectorError::Invalid(m) => write!(f, "invalid selector: {m}"),
        }
    }
}

impl std::error::Error for SelectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelectorError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SelectorError {
    fn from(e: NnError) -> Self {
        SelectorError::Nn(e)
    }
}

impl From<std::io::Error> for SelectorError {
    fn from(e: std::io::Error) -> Self {
        SelectorError::Io(e.to_string())
    }
}
