//! Admission-controlled concurrent serving layer over [`SelectorService`].
//!
//! A selector embedded in someone else's solver library faces traffic it
//! does not control: bursts beyond its capacity, pathological matrices
//! that make extraction slow, and model artefacts replaced while
//! requests are in flight. [`SelectorServer`] turns the single-shot
//! degradation ladder of [`SelectorService`] into a service that stays
//! predictable under all three:
//!
//! * **Admission control** — a bounded queue feeding a fixed worker
//!   pool. When the queue is full, new requests are shed immediately
//!   with [`ServeError::Overloaded`] instead of queueing unboundedly
//!   and collapsing latency for everyone.
//! * **Deadlines** — each request may carry a deadline; cooperative
//!   cancellation checkpoints threaded through representation
//!   extraction and the CNN forward pass abandon the work as soon as
//!   the deadline passes ([`ServeError::DeadlineExceeded`]).
//! * **Circuit breaker** — sustained CNN failures (panics, timeouts,
//!   non-finite outputs) trip the breaker: traffic is demoted to the
//!   tree rung while open, a single probe request re-tests the CNN
//!   after an exponentially growing backoff, and a successful probe
//!   closes the breaker again.
//! * **Hot reload** — [`SelectorServer::reload_model`] loads and
//!   validates a new artefact off the hot path (PR 3's envelope
//!   checks), atomically swaps it in on success, and keeps serving the
//!   old model with a typed error on failure. Transient read errors are
//!   retried with backoff; corrupt artefacts are not.
//!
//! Time is injected ([`ClockFn`]), and [`ServeHooks`] can inject CNN
//! faults per request, so every failure mode above is testable
//! deterministically.
//!
//! Every counter the server keeps lives in a [`Registry`]
//! (`dnnspmv-obs`): [`SelectorServer::report`] is a typed view over a
//! registry snapshot, [`SelectorServer::metrics_snapshot`] exposes the
//! raw snapshot for exporters, and the same registry is shared with
//! every hot-reloaded model generation, so ladder counters survive
//! swaps without any merge step.

use crate::cache::{matrix_fingerprint, CacheConfig, CacheInsert, CacheLookup, DecisionCache};
use crate::error::SelectorError;
use crate::selector::FormatSelector;
use crate::service::{
    BatchGuard, CnnFault, CnnRungOutcome, SelectGuard, Selection, SelectionSource, SelectorService,
    ServiceReport,
};
use dnnspmv_nn::{with_gemm_threading, GemmThreading, NnError};
use dnnspmv_obs::{Counter, Gauge, GaugeGuard, LatencyHistogram, MetricsSnapshot, Registry};
use dnnspmv_sparse::{CooMatrix, Scalar};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::Duration;

pub use dnnspmv_obs::{system_clock, ClockFn};

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive CNN failures (panic, deadline, non-finite) that trip
    /// the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before the first probe.
    pub open_backoff: Duration,
    /// Cap on the exponentially growing backoff after failed probes.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            open_backoff: Duration::from_millis(500),
            max_backoff: Duration::from_secs(30),
        }
    }
}

/// Circuit-breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// CNN serving normally.
    Closed,
    /// CNN demoted; all traffic answers from the tree rung.
    Open,
    /// One probe request is re-testing the CNN.
    HalfOpen,
}

/// Observable breaker snapshot, including transition counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures seen while closed.
    pub consecutive_failures: u32,
    /// Closed/half-open → open transitions.
    pub to_open: u64,
    /// Open → half-open transitions (probe issued).
    pub to_half_open: u64,
    /// Half-open → closed transitions (probe succeeded).
    pub to_closed: u64,
    /// Backoff the *next* open period would use, in nanoseconds.
    pub current_backoff_ns: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consec: u32,
    opened_at: u64,
    backoff_ns: u64,
    /// A probe is in flight; further half-open traffic is denied.
    probing: bool,
    to_open: u64,
    to_half_open: u64,
    to_closed: u64,
}

/// What the breaker allows for the CNN rung of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Breaker closed: run the CNN.
    Allow,
    /// Breaker half-open: run the CNN as the single probe.
    Probe,
    /// Breaker open: skip the CNN, answer from the tree.
    Deny,
}

#[derive(Debug)]
struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Self {
        let backoff = cfg.open_backoff.as_nanos() as u64;
        Self {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consec: 0,
                opened_at: 0,
                backoff_ns: backoff,
                probing: false,
                to_open: 0,
                to_half_open: 0,
                to_closed: 0,
            }),
        }
    }

    /// Decides the CNN gate for a request dequeued at `now`.
    fn gate(&self, now: u64) -> Gate {
        let mut b = self.inner.lock().expect("breaker lock");
        match b.state {
            BreakerState::Closed => Gate::Allow,
            BreakerState::Open => {
                if now >= b.opened_at.saturating_add(b.backoff_ns) {
                    b.state = BreakerState::HalfOpen;
                    b.to_half_open += 1;
                    b.probing = true;
                    Gate::Probe
                } else {
                    Gate::Deny
                }
            }
            BreakerState::HalfOpen => {
                if b.probing {
                    Gate::Deny
                } else {
                    b.probing = true;
                    Gate::Probe
                }
            }
        }
    }

    /// Records a healthy CNN answer. Only a successful *probe* closes
    /// an open breaker; a late success from a request admitted before
    /// the trip does not.
    fn on_success(&self, probe: bool) {
        let mut b = self.inner.lock().expect("breaker lock");
        b.consec = 0;
        if probe {
            b.probing = false;
            if b.state == BreakerState::HalfOpen {
                b.state = BreakerState::Closed;
                b.to_closed += 1;
                b.backoff_ns = self.cfg.open_backoff.as_nanos() as u64;
            }
        }
    }

    /// Records a CNN failure (panic, deadline, non-finite) at `now`.
    fn on_failure(&self, probe: bool, now: u64) {
        let mut b = self.inner.lock().expect("breaker lock");
        if probe {
            // Failed probe: reopen with doubled backoff.
            b.probing = false;
            b.state = BreakerState::Open;
            b.opened_at = now;
            b.to_open += 1;
            b.backoff_ns = b
                .backoff_ns
                .saturating_mul(2)
                .min(self.cfg.max_backoff.as_nanos() as u64);
            b.consec = self.cfg.failure_threshold;
            return;
        }
        match b.state {
            BreakerState::Closed => {
                b.consec += 1;
                if b.consec >= self.cfg.failure_threshold {
                    b.state = BreakerState::Open;
                    b.opened_at = now;
                    b.to_open += 1;
                }
            }
            // Late failures of requests admitted before the trip do not
            // double-trip or extend the open period.
            BreakerState::Open | BreakerState::HalfOpen => {}
        }
    }

    /// Releases a probe slot whose request never reached the CNN rung
    /// (e.g. its deadline expired while queued).
    fn abandon_probe(&self) {
        self.inner.lock().expect("breaker lock").probing = false;
    }

    /// Whether the breaker is currently closed, without consuming a
    /// probe slot or transitioning state — the micro-batcher peeks this
    /// to decide between the shared CNN pass (closed) and per-member
    /// single-path handling (open or half-open, where probe accounting
    /// must stay one-request-at-a-time).
    fn closed(&self) -> bool {
        self.inner.lock().expect("breaker lock").state == BreakerState::Closed
    }

    fn snapshot(&self) -> BreakerSnapshot {
        let b = self.inner.lock().expect("breaker lock");
        BreakerSnapshot {
            state: b.state,
            consecutive_failures: b.consec,
            to_open: b.to_open,
            to_half_open: b.to_half_open,
            to_closed: b.to_closed,
            current_backoff_ns: b.backoff_ns,
        }
    }
}

/// Typed serving errors. Every rejected or abandoned request gets one.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue was full; the request was shed on admission.
    Overloaded {
        /// The configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The request's deadline passed before an answer was produced.
    DeadlineExceeded,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A hot reload failed; the previous model keeps serving.
    Reload(SelectorError),
    /// The worker handling the request disappeared (never expected;
    /// defence in depth around thread death).
    WorkerLost,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "server overloaded (queue capacity {capacity})")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Reload(e) => write!(f, "model reload rejected: {e}"),
            ServeError::WorkerLost => write!(f, "worker lost"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Reload(e) => Some(e),
            _ => None,
        }
    }
}

/// Observer of served selections — the seam the feedback layer hangs
/// off. Called synchronously on every *served* answer (cache hit,
/// single path, batched path) with the request's matrix, the selection
/// returned to the client, and the model generation that produced it.
///
/// Implementations MUST be cheap and non-blocking: the contract is a
/// counter tick plus at most a bounded-queue `try_push` — anything
/// slow (timing kernels, I/O) belongs on the observer's own thread.
/// Errors and deadline misses are not observed; those requests carry
/// no selection to learn from.
pub trait ServeTap<S: Scalar>: Send + Sync {
    /// One served answer.
    fn observe(&self, matrix: &Arc<CooMatrix<S>>, selection: &Selection, generation: u64);
}

/// Deterministic fault-injection hooks (all `None`/no-op in
/// production).
#[derive(Clone, Default)]
pub struct ServeHooks {
    /// Consulted once per request that reaches the CNN rung, with the
    /// request's sequence number; the returned fault is injected into
    /// the rung. Side effects (advancing a fake clock to simulate a
    /// latency spike or a hang, parking the worker to hold the queue
    /// full) are the test harness's levers.
    pub cnn_fault: Option<Arc<dyn Fn(u64) -> CnnFault + Send + Sync>>,
}

impl fmt::Debug for ServeHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeHooks")
            .field("cnn_fault", &self.cnn_fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (min 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied by [`SelectorServer::select`] when the caller
    /// does not pass one (`None`: no deadline).
    pub default_deadline: Option<Duration>,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Attempts for a hot reload whose artefact read fails transiently.
    pub reload_attempts: u32,
    /// Backoff before the first reload retry (doubles per retry).
    pub reload_backoff: Duration,
    /// Record per-request latency histograms (queue wait, handle time).
    /// Outcome counters are always kept — they are the accounting the
    /// reports are built from — but the extra clock reads and histogram
    /// stores can be switched off, which is how the overhead smoke
    /// measures an uninstrumented baseline.
    pub latency_metrics: bool,
    /// Fingerprint-keyed decision cache (disabled by default: capacity
    /// 0). Hits are answered synchronously in [`SelectorServer::submit`]
    /// without touching the queue; only CNN-answered selections are
    /// cached, and every entry is keyed by the model generation that
    /// produced it, so a hot reload invalidates the whole cache at once.
    pub cache: CacheConfig,
    /// Largest micro-batch a worker may coalesce from consecutive
    /// cache-miss requests (1 disables batching). Batched members share
    /// one packed CNN forward pass; deadlines, breaker accounting and
    /// fault injection stay per-member.
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more work
    /// before running it. Zero (the default) batches opportunistically:
    /// whatever is already queued is taken, but the worker never idles
    /// waiting for a fuller batch, so low-load latency is unaffected.
    pub max_batch_wait: Duration,
    /// GEMM threading policy installed around each worker's drain
    /// loop. Defaults to [`GemmThreading::Serial`]: the worker pool is
    /// already the server's parallelism, so letting every worker also
    /// fan its CNN GEMMs across the shared rayon pool would only add
    /// queueing contention between workers (and between serving and
    /// any concurrent evolve pass) without adding cores. Threading
    /// policy never changes results — GEMM output is bit-identical at
    /// any setting — so this is purely a scheduling knob.
    pub gemm_threading: GemmThreading,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            breaker: BreakerConfig::default(),
            reload_attempts: 3,
            reload_backoff: Duration::from_millis(20),
            latency_metrics: true,
            cache: CacheConfig::default(),
            max_batch: 8,
            max_batch_wait: Duration::ZERO,
            gemm_threading: GemmThreading::Serial,
        }
    }
}

/// Registry-backed server metrics. Handles are bound once at
/// construction, so the hot path records through pre-resolved atomic
/// cells — never through the registry's maps.
#[derive(Debug)]
struct ServerMetrics {
    registry: Registry,
    submitted: Counter,
    shed: Counter,
    rejected_shutdown: Counter,
    served_cnn: Counter,
    served_tree: Counter,
    served_default: Counter,
    deadline_in_queue: Counter,
    deadline_in_flight: Counter,
    breaker_demoted: Counter,
    probes_ok: Counter,
    probes_failed: Counter,
    reloads_ok: Counter,
    reloads_rejected: Counter,
    served_cache: Counter,
    path_cache: Counter,
    path_batched: Counter,
    path_single: Counter,
    cache_miss: Counter,
    cache_stale: Counter,
    cache_expired: Counter,
    cache_inserted: Counter,
    cache_updated: Counter,
    cache_evicted: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    model_generation: Gauge,
    cache_entries: Gauge,
    queue_wait_ns: Arc<LatencyHistogram>,
    handle_ns: Arc<LatencyHistogram>,
    cache_hit_ns: Arc<LatencyHistogram>,
    batch_size: Arc<LatencyHistogram>,
    /// Histogram recording (and its extra clock reads) enabled.
    timed: bool,
}

impl ServerMetrics {
    fn bind(registry: Registry, timed: bool) -> Self {
        let outcome = |o: &str| registry.counter("serve_outcome_total", &[("outcome", o)]);
        let served = |rung: &str| {
            registry.counter(
                "serve_outcome_total",
                &[("outcome", "served"), ("rung", rung)],
            )
        };
        let path = |p: &str| registry.counter("serve_path_total", &[("path", p)]);
        let lookup = |r: &str| registry.counter("serve_cache_lookup_total", &[("result", r)]);
        let store = |r: &str| registry.counter("serve_cache_store_total", &[("result", r)]);
        Self {
            submitted: registry.counter("serve_submitted_total", &[]),
            shed: outcome("shed"),
            rejected_shutdown: outcome("rejected_shutdown"),
            served_cnn: served("cnn"),
            served_tree: served("tree"),
            served_default: served("default"),
            served_cache: served("cache"),
            path_cache: path("cache"),
            path_batched: path("batched"),
            path_single: path("single"),
            cache_miss: lookup("miss"),
            cache_stale: lookup("stale"),
            cache_expired: lookup("expired"),
            cache_inserted: store("inserted"),
            cache_updated: store("updated"),
            cache_evicted: store("evicted"),
            cache_entries: registry.gauge("serve_cache_entries", &[]),
            cache_hit_ns: registry.histogram("serve_cache_hit_ns", &[]),
            batch_size: registry.histogram("serve_batch_size", &[]),
            deadline_in_queue: outcome("deadline_in_queue"),
            deadline_in_flight: outcome("deadline_in_flight"),
            breaker_demoted: registry.counter("serve_breaker_demoted_total", &[]),
            probes_ok: registry.counter("serve_probe_total", &[("result", "ok")]),
            probes_failed: registry.counter("serve_probe_total", &[("result", "failed")]),
            reloads_ok: registry.counter("serve_reload_total", &[("result", "ok")]),
            reloads_rejected: registry.counter("serve_reload_total", &[("result", "rejected")]),
            queue_depth: registry.gauge("serve_queue_depth", &[]),
            in_flight: registry.gauge("serve_in_flight", &[]),
            model_generation: registry.gauge("serve_model_generation", &[]),
            queue_wait_ns: registry.histogram("serve_queue_wait_ns", &[]),
            handle_ns: registry.histogram("serve_handle_ns", &[]),
            timed,
            registry,
        }
    }
}

/// Decision-cache counters, as exported by [`ServerReport`].
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ServeCacheReport {
    /// Lookups answered from the cache (same as
    /// [`ServerReport::served_cache`]).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry from a retired model generation
    /// (dropped on sight).
    pub stale: u64,
    /// Lookups that found an entry past its TTL (dropped on sight).
    pub expired: u64,
    /// Entries inserted (fresh key).
    pub inserted: u64,
    /// Entries refreshed in place (key already present).
    pub updated: u64,
    /// Entries evicted to make room (LRU within a shard).
    pub evicted: u64,
    /// Live entries right now.
    pub entries: i64,
}

impl ServeCacheReport {
    /// Hit fraction over all lookups (0 when the cache saw no traffic).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses + self.stale + self.expired;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Monotonic server counters plus breaker and ladder snapshots.
///
/// Accounting invariant (once all accepted work has completed):
/// `submitted == shed + rejected_shutdown + served + deadline_in_queue +
/// deadline_in_flight` — every request lands in exactly one terminal
/// bucket, none lost, none double-counted. A second, path-level
/// invariant refines `served`: `served == cache.hits + batched_served +
/// single_served` — every answer travelled exactly one hot-path route.
#[derive(Debug, Clone, Serialize)]
pub struct ServerReport {
    /// Requests that entered `submit` at all.
    pub submitted: u64,
    /// Shed on admission: bounded queue was full.
    pub shed: u64,
    /// Rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Answered, by any rung (`served_cnn + served_tree +
    /// served_default + served_cache`).
    pub served: u64,
    /// Answered by the CNN rung.
    pub served_cnn: u64,
    /// Answered by the tree rung.
    pub served_tree: u64,
    /// Answered by the static default.
    pub served_default: u64,
    /// Answered from the decision cache (no rung ran at all).
    pub served_cache: u64,
    /// Answers produced by a micro-batched worker pass.
    pub batched_served: u64,
    /// Answers produced by the per-request worker path.
    pub single_served: u64,
    /// Decision-cache counters.
    pub cache: ServeCacheReport,
    /// Deadline expired while still queued.
    pub deadline_in_queue: u64,
    /// Deadline expired during processing.
    pub deadline_in_flight: u64,
    /// Requests whose CNN rung was skipped because the breaker was
    /// open.
    pub breaker_demoted: u64,
    /// Half-open probes that found the CNN healthy.
    pub probes_ok: u64,
    /// Half-open probes that failed (breaker reopened).
    pub probes_failed: u64,
    /// Hot reloads that swapped a new model in.
    pub reloads_ok: u64,
    /// Hot reloads rejected (bad artefact or persistent read failure).
    pub reloads_rejected: u64,
    /// Generation number of the live model (starts at 0, +1 per
    /// successful reload).
    pub model_generation: u64,
    /// Breaker snapshot.
    pub breaker: BreakerSnapshot,
    /// Degradation-ladder counters, summed across *all* model
    /// generations ever served (retired generations included).
    pub ladder: ServiceReport,
}

impl ServerReport {
    /// Sum of the terminal buckets; equals `submitted` once all
    /// accepted work has completed.
    pub fn accounted(&self) -> u64 {
        self.shed
            + self.rejected_shutdown
            + self.served
            + self.deadline_in_queue
            + self.deadline_in_flight
    }

    /// Path-level refinement of the accounting invariant: every served
    /// answer arrived via exactly one route — a synchronous cache hit,
    /// a micro-batched worker pass, or the per-request worker path.
    pub fn path_accounted(&self) -> bool {
        self.served == self.served_cache + self.batched_served + self.single_served
    }
}

/// One model generation: an immutable validated service plus its
/// sequence number. Swapped atomically on hot reload.
#[derive(Debug)]
struct Generation {
    service: SelectorService,
    number: u64,
}

struct Job<S: Scalar> {
    matrix: Arc<CooMatrix<S>>,
    deadline: Option<u64>,
    seq: u64,
    /// Clock reading at admission — the queue-wait histogram is
    /// dequeue-time minus this.
    enqueued_at: u64,
    /// Structural fingerprint computed at admission (only when the
    /// cache is enabled); the worker stores CNN answers under it.
    fp: Option<u64>,
    reply: mpsc::Sender<Result<Selection, ServeError>>,
}

struct Inner<S: Scalar> {
    cfg: ServerConfig,
    clock: ClockFn,
    hooks: ServeHooks,
    breaker: Breaker,
    queue: Mutex<VecDeque<Job<S>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: ServerMetrics,
    /// The live generation; readers clone the `Arc` and drop the lock
    /// before doing any work, so a reload never blocks on inference.
    /// Every generation shares `metrics.registry`, so in-flight
    /// requests finishing against a retired model still land in the
    /// same ladder counters.
    slot: RwLock<Arc<Generation>>,
    /// Mirror of the live generation number, readable without the slot
    /// lock — the submit hot path keys cache lookups off this.
    generation_no: AtomicU64,
    /// Fingerprint-keyed decision cache (`None` when disabled).
    cache: Option<DecisionCache>,
    /// Serve observer (write-once; empty in production unless the
    /// feedback layer attaches one).
    tap: OnceLock<Arc<dyn ServeTap<S>>>,
    seq: AtomicU64,
}

/// Restores a gauge by `n` on drop — the batch-sized analogue of
/// [`GaugeGuard`], so the in-flight gauge is released even if a batch
/// member's CNN pass panics through the worker.
struct GaugeDebt<'a> {
    gauge: &'a Gauge,
    n: i64,
}

impl Drop for GaugeDebt<'_> {
    fn drop(&mut self) {
        self.gauge.add(-self.n);
    }
}

type Reply = mpsc::Sender<Result<Selection, ServeError>>;

impl<S: Scalar> Inner<S> {
    /// Notifies the attached serve tap, if any. Kept out of line so
    /// every served path (cache hit, single, batched) shares the same
    /// one-liner and the no-tap case is a single pointer load.
    #[inline]
    fn tap_observe(&self, matrix: &Arc<CooMatrix<S>>, sel: &Selection, generation: u64) {
        if let Some(tap) = self.tap.get() {
            tap.observe(matrix, sel, generation);
        }
    }

    /// Processes one job and returns its reply channel plus the answer
    /// — the caller sends it *after* this returns, so the in-flight
    /// gauge (released on return, panic-unwind included) never reads 1
    /// to a client that already has its reply.
    fn handle(&self, job: Job<S>) -> (Reply, Result<Selection, ServeError>) {
        let now = (self.clock)();
        let _in_flight = GaugeGuard::enter(&self.metrics.in_flight);
        if self.metrics.timed {
            self.metrics
                .queue_wait_ns
                .record(now.saturating_sub(job.enqueued_at));
        }
        if job.deadline.is_some_and(|d| now >= d) {
            self.metrics.deadline_in_queue.inc();
            return (job.reply, Err(ServeError::DeadlineExceeded));
        }
        let generation = self.slot.read().expect("slot lock").clone();
        let gate = if generation.service.has_cnn() {
            self.breaker.gate(now)
        } else {
            Gate::Allow
        };
        let (skip_cnn, probe) = match gate {
            Gate::Allow => (false, false),
            Gate::Probe => (false, true),
            Gate::Deny => {
                self.metrics.breaker_demoted.inc();
                (true, false)
            }
        };
        // Faults are injected at the CNN rung only: a demoted request
        // never touches the (possibly faulty) model, which is the point
        // of the breaker.
        let inject = if skip_cnn {
            CnnFault::None
        } else {
            self.hooks
                .cnn_fault
                .as_ref()
                .map_or(CnnFault::None, |h| h(job.seq))
        };
        let clock = self.clock.clone();
        let deadline = job.deadline;
        let cancel = move || deadline.is_some_and(|d| clock() >= d);
        let out = generation.service.select_guarded(
            &job.matrix,
            &SelectGuard {
                skip_cnn,
                cancel: Some(&cancel),
                inject,
            },
        );
        match out.cnn {
            CnnRungOutcome::Answered | CnnRungOutcome::LowConfidence => {
                if probe {
                    self.metrics.probes_ok.inc();
                }
                self.breaker.on_success(probe);
            }
            CnnRungOutcome::Panicked | CnnRungOutcome::NonFinite | CnnRungOutcome::Cancelled => {
                if probe {
                    self.metrics.probes_failed.inc();
                }
                self.breaker.on_failure(probe, (self.clock)());
            }
            CnnRungOutcome::Skipped | CnnRungOutcome::Absent => {
                if probe {
                    self.breaker.abandon_probe();
                }
            }
        }
        if self.metrics.timed {
            self.metrics
                .handle_ns
                .record((self.clock)().saturating_sub(now));
        }
        match out.selection {
            Some(sel) => {
                let c = match sel.source {
                    SelectionSource::Cnn => &self.metrics.served_cnn,
                    SelectionSource::Tree => &self.metrics.served_tree,
                    SelectionSource::Default => &self.metrics.served_default,
                };
                c.inc();
                self.metrics.path_single.inc();
                self.cache_store(job.fp, generation.number, out.cnn, &sel);
                self.tap_observe(&job.matrix, &sel, generation.number);
                (job.reply, Ok(sel))
            }
            None => {
                self.metrics.deadline_in_flight.inc();
                (job.reply, Err(ServeError::DeadlineExceeded))
            }
        }
    }

    /// Stores a CNN-answered selection in the decision cache. Tree and
    /// default answers are never cached: they are the *degraded* rungs,
    /// and caching them would keep serving degraded answers after the
    /// CNN recovered.
    fn cache_store(&self, fp: Option<u64>, generation: u64, cnn: CnnRungOutcome, sel: &Selection) {
        let (Some(cache), Some(fp)) = (&self.cache, fp) else {
            return;
        };
        if cnn != CnnRungOutcome::Answered {
            return;
        }
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_CACHE_STORE) {
            // A failed shard store costs a future hit, nothing else.
            return;
        }
        match cache.insert(fp, generation, (self.clock)(), *sel) {
            CacheInsert::Inserted => {
                self.metrics.cache_inserted.inc();
                self.metrics.cache_entries.inc();
            }
            CacheInsert::InsertedEvicting => {
                self.metrics.cache_inserted.inc();
                self.metrics.cache_evicted.inc();
            }
            CacheInsert::Updated => self.metrics.cache_updated.inc(),
        }
    }

    /// Processes a coalesced batch of jobs through one shared CNN
    /// forward pass, preserving the per-request semantics of
    /// [`Inner::handle`]: queue-wait accounting, in-queue deadline
    /// expiry, per-member fault injection, per-member cancellation, and
    /// per-member breaker feedback. Batches are only formed while the
    /// breaker is closed, so there is no probe bookkeeping here.
    fn handle_batch_many(&self, jobs: Vec<Job<S>>) -> Vec<(Reply, Result<Selection, ServeError>)> {
        let now = (self.clock)();
        let n = jobs.len() as i64;
        self.metrics.in_flight.add(n);
        let _in_flight = GaugeDebt {
            gauge: &self.metrics.in_flight,
            n,
        };
        let generation = self.slot.read().expect("slot lock").clone();
        let mut results: Vec<Option<Result<Selection, ServeError>>> = vec![None; jobs.len()];
        let mut live: Vec<usize> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            if self.metrics.timed {
                self.metrics
                    .queue_wait_ns
                    .record(now.saturating_sub(job.enqueued_at));
            }
            if job.deadline.is_some_and(|d| now >= d) {
                self.metrics.deadline_in_queue.inc();
                results[i] = Some(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(i);
            }
        }
        if !live.is_empty() {
            // Hooks are consulted exactly once per member reaching the
            // CNN rung, just as on the single path.
            let injects: Vec<CnnFault> = live
                .iter()
                .map(|&i| {
                    self.hooks
                        .cnn_fault
                        .as_ref()
                        .map_or(CnnFault::None, |h| h(jobs[i].seq))
                })
                .collect();
            let cancels: Vec<_> = live
                .iter()
                .map(|&i| {
                    let clock = self.clock.clone();
                    let deadline = jobs[i].deadline;
                    move || deadline.is_some_and(|d| clock() >= d)
                })
                .collect();
            let guards: Vec<BatchGuard> = injects
                .iter()
                .zip(&cancels)
                .map(|(&inject, c)| BatchGuard {
                    cancel: Some(c as &dyn Fn() -> bool),
                    inject,
                })
                .collect();
            let refs: Vec<&CooMatrix<S>> = live.iter().map(|&i| jobs[i].matrix.as_ref()).collect();
            let outs = generation.service.select_batch_guarded(&refs, &guards);
            for (&i, out) in live.iter().zip(outs) {
                match out.cnn {
                    CnnRungOutcome::Answered | CnnRungOutcome::LowConfidence => {
                        self.breaker.on_success(false);
                    }
                    CnnRungOutcome::Panicked
                    | CnnRungOutcome::NonFinite
                    | CnnRungOutcome::Cancelled => {
                        self.breaker.on_failure(false, (self.clock)());
                    }
                    CnnRungOutcome::Skipped | CnnRungOutcome::Absent => {}
                }
                if self.metrics.timed {
                    self.metrics
                        .handle_ns
                        .record((self.clock)().saturating_sub(now));
                }
                results[i] = Some(match out.selection {
                    Some(sel) => {
                        let c = match sel.source {
                            SelectionSource::Cnn => &self.metrics.served_cnn,
                            SelectionSource::Tree => &self.metrics.served_tree,
                            SelectionSource::Default => &self.metrics.served_default,
                        };
                        c.inc();
                        self.metrics.path_batched.inc();
                        self.cache_store(jobs[i].fp, generation.number, out.cnn, &sel);
                        self.tap_observe(&jobs[i].matrix, &sel, generation.number);
                        Ok(sel)
                    }
                    None => {
                        self.metrics.deadline_in_flight.inc();
                        Err(ServeError::DeadlineExceeded)
                    }
                });
            }
        }
        jobs.into_iter()
            .zip(results)
            .map(|(j, r)| (j.reply, r.expect("every batch member resolved")))
            .collect()
    }

    /// Routes a gathered batch: singleton batches and any situation
    /// where the shared CNN pass would change semantics (no CNN rung,
    /// breaker not closed — probes must stay one-request-at-a-time) go
    /// through the per-request path member by member.
    fn handle_batch(&self, jobs: Vec<Job<S>>) -> Vec<(Reply, Result<Selection, ServeError>)> {
        self.metrics.batch_size.record(jobs.len() as u64);
        let batchable = jobs.len() > 1
            && self.slot.read().expect("slot lock").service.has_cnn()
            && self.breaker.closed();
        if batchable {
            self.handle_batch_many(jobs)
        } else {
            jobs.into_iter().map(|j| self.handle(j)).collect()
        }
    }

    /// Pops one job, then greedily coalesces up to `max_batch - 1` more.
    /// With a non-zero `max_batch_wait` the worker holds the partial
    /// batch open until the (injected) clock passes the gather deadline,
    /// sleeping in short real-time slices so a frozen fake clock holds
    /// the gather window open deterministically.
    fn gather_batch(&self, first: Job<S>) -> Vec<Job<S>> {
        let max_batch = self.cfg.max_batch.max(1);
        let mut batch = vec![first];
        if max_batch == 1 {
            return batch;
        }
        // Latency injection on the gather path (the only legal action
        // here — a panic would take the worker down with it).
        dnnspmv_chaos::failpoint!(dnnspmv_chaos::sites::SERVE_BATCH_GATHER);
        let wait_ns = self.cfg.max_batch_wait.as_nanos() as u64;
        let gather_deadline = (self.clock)().saturating_add(wait_ns);
        let mut q = self.queue.lock().expect("queue lock");
        loop {
            while batch.len() < max_batch {
                match q.pop_front() {
                    Some(j) => {
                        self.metrics.queue_depth.dec();
                        batch.push(j);
                    }
                    None => break,
                }
            }
            if batch.len() >= max_batch
                || wait_ns == 0
                || (self.clock)() >= gather_deadline
                || self.shutdown.load(Ordering::SeqCst)
            {
                return batch;
            }
            // Short real slice, injected-clock deadline: under a fake
            // clock the slice expires but the deadline does not, so the
            // window stays open until the test advances time.
            let (guard, _) = self
                .cv
                .wait_timeout(q, Duration::from_micros(200))
                .expect("queue lock");
            q = guard;
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue lock");
                loop {
                    if let Some(j) = q.pop_front() {
                        self.metrics.queue_depth.dec();
                        break Some(j);
                    }
                    // Drain-then-exit: queued work admitted before
                    // shutdown still completes, keeping counters exact.
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.cv.wait(q).expect("queue lock");
                }
            };
            match job {
                Some(j) => {
                    for (reply, result) in self.handle_batch(self.gather_batch(j)) {
                        let _ = reply.send(result);
                    }
                }
                None => return,
            }
        }
    }
}

/// A handle to one submitted request; resolves when a worker answers —
/// or immediately, when the decision cache answered at admission.
pub struct PendingSelection {
    state: PendingState,
}

enum PendingState {
    /// Answered synchronously (cache hit); no worker involved.
    Ready(Box<Result<Selection, ServeError>>),
    /// Queued; a worker will reply.
    Waiting(mpsc::Receiver<Result<Selection, ServeError>>),
}

impl PendingSelection {
    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<Selection, ServeError> {
        match self.state {
            PendingState::Ready(r) => *r,
            PendingState::Waiting(rx) => rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }
}

/// Concurrent, admission-controlled selector server (see module docs).
pub struct SelectorServer<S: Scalar> {
    inner: Arc<Inner<S>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<S: Scalar> SelectorServer<S> {
    /// Starts a server over a validated service with the system clock
    /// and no fault hooks.
    pub fn new(service: SelectorService, cfg: ServerConfig) -> Self {
        Self::with_parts(service, cfg, ServeHooks::default(), system_clock())
    }

    /// Starts a server with an injected clock and fault hooks — the
    /// deterministic-testing constructor.
    pub fn with_parts(
        service: SelectorService,
        cfg: ServerConfig,
        hooks: ServeHooks,
        clock: ClockFn,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let metrics = ServerMetrics::bind(Registry::new(), cfg.latency_metrics);
        // The service joins the server's registry so its rung counters
        // live beside the server's own — and survive hot reloads, since
        // every future generation binds the same registry.
        let service = service.with_registry(metrics.registry.clone());
        let inner = Arc::new(Inner {
            breaker: Breaker::new(cfg.breaker),
            cache: DecisionCache::new(&cfg.cache),
            cfg,
            clock,
            hooks,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
            slot: RwLock::new(Arc::new(Generation { service, number: 0 })),
            generation_no: AtomicU64::new(0),
            tap: OnceLock::new(),
            seq: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                // Each worker drains under the configured GEMM policy
                // (default `Serial` — see `ServerConfig::gemm_threading`),
                // installed once for the thread's whole life.
                let gemm_policy = inner.cfg.gemm_threading;
                thread::Builder::new()
                    .name(format!("dnnspmv-serve-{i}"))
                    .spawn(move || with_gemm_threading(gemm_policy, || inner.worker_loop()))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Submits a request with an explicit deadline (`None`: no
    /// deadline). Sheds immediately with [`ServeError::Overloaded`]
    /// when the queue is full. When the decision cache holds a
    /// same-generation answer for the matrix's structural fingerprint,
    /// the request is answered synchronously without queueing at all —
    /// the hit path is a fingerprint, a sharded lookup, and a clone.
    pub fn submit(
        &self,
        matrix: Arc<CooMatrix<S>>,
        deadline: Option<Duration>,
    ) -> Result<PendingSelection, ServeError> {
        let m = &self.inner.metrics;
        m.submitted.inc();
        if self.inner.shutdown.load(Ordering::SeqCst) {
            m.rejected_shutdown.inc();
            return Err(ServeError::ShuttingDown);
        }
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_ADMISSION) {
            // An injected admission failure presents exactly like a
            // full queue — shed and counted, so accounting stays exact.
            m.shed.inc();
            return Err(ServeError::Overloaded {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let now = (self.inner.clock)();
        let mut fp = None;
        if let Some(cache) = &self.inner.cache {
            let key = matrix_fingerprint(matrix.as_ref());
            let generation = self.inner.generation_no.load(Ordering::Acquire);
            // An unreadable cache shard (injected) serves as a miss:
            // the request takes the queued path like any other miss.
            #[cfg(feature = "chaos")]
            let looked_up = if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_CACHE_LOOKUP)
            {
                CacheLookup::Miss
            } else {
                cache.lookup(key, generation, now)
            };
            #[cfg(not(feature = "chaos"))]
            let looked_up = cache.lookup(key, generation, now);
            match looked_up {
                CacheLookup::Hit(sel) => {
                    m.served_cache.inc();
                    m.path_cache.inc();
                    if m.timed {
                        m.cache_hit_ns
                            .record((self.inner.clock)().saturating_sub(now));
                    }
                    self.inner.tap_observe(&matrix, &sel, generation);
                    return Ok(PendingSelection {
                        state: PendingState::Ready(Box::new(Ok(sel))),
                    });
                }
                CacheLookup::Miss => m.cache_miss.inc(),
                CacheLookup::Stale => {
                    m.cache_stale.inc();
                    m.cache_entries.dec();
                }
                CacheLookup::Expired => {
                    m.cache_expired.inc();
                    m.cache_entries.dec();
                }
            }
            fp = Some(key);
        }
        let deadline_ns = deadline.map(|d| now.saturating_add(d.as_nanos() as u64));
        let (tx, rx) = mpsc::channel();
        let job = Job {
            matrix,
            deadline: deadline_ns,
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            enqueued_at: now,
            fp,
            reply: tx,
        };
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.len() >= self.inner.cfg.queue_capacity {
                m.shed.inc();
                return Err(ServeError::Overloaded {
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            q.push_back(job);
            m.queue_depth.inc();
        }
        self.inner.cv.notify_one();
        Ok(PendingSelection {
            state: PendingState::Waiting(rx),
        })
    }

    /// Synchronous convenience: submit with the configured default
    /// deadline and wait.
    pub fn select(&self, matrix: &CooMatrix<S>) -> Result<Selection, ServeError> {
        self.submit(Arc::new(matrix.clone()), self.inner.cfg.default_deadline)?
            .wait()
    }

    /// Hot-reloads the model from `path`: loads and validates off the
    /// hot path (envelope checksum, structural validation, service
    /// construction), then atomically swaps the new generation in.
    /// On any failure the old model keeps serving and a typed
    /// [`ServeError::Reload`] is returned. Transient read errors are
    /// retried `reload_attempts` times with doubling backoff.
    pub fn reload_model<P: AsRef<Path>>(&self, path: P) -> Result<u64, ServeError> {
        self.reload_model_with_sleep(path, &|d| thread::sleep(d))
    }

    /// [`SelectorServer::reload_model`] with an injectable sleep, so
    /// retry behaviour is testable without wall-clock waits.
    pub fn reload_model_with_sleep<P: AsRef<Path>>(
        &self,
        path: P,
        sleep: &dyn Fn(Duration),
    ) -> Result<u64, ServeError> {
        let cfg = &self.inner.cfg;
        let reject = |e: SelectorError| {
            self.inner.metrics.reloads_rejected.inc();
            ServeError::Reload(e)
        };
        let sel = load_selector_with_retry(
            path.as_ref(),
            cfg.reload_attempts,
            cfg.reload_backoff,
            sleep,
        )
        .map_err(reject)?;
        // Swap under the write lock; in-flight requests hold an Arc to
        // the old generation and finish against it undisturbed. The new
        // generation binds the shared registry, so ladder counters
        // carry straight across the swap.
        {
            let mut slot = self.inner.slot.write().expect("slot lock");
            let service = SelectorService::new(Some(sel), slot.service.tree().cloned())
                .map_err(reject)?
                .with_confidence_threshold(slot.service.confidence_threshold())
                .with_default_format(slot.service.default_format())
                .with_registry(self.inner.metrics.registry.clone());
            let number = slot.number + 1;
            *slot = Arc::new(Generation { service, number });
            // Publish the new generation number for lock-free cache
            // lookups; entries keyed by older generations are now stale
            // and get dropped lazily on their next lookup.
            self.inner.generation_no.store(number, Ordering::Release);
            self.inner.metrics.model_generation.set(number as i64);
            self.inner.metrics.reloads_ok.inc();
            Ok(number)
        }
    }

    /// Attaches a serve observer. Write-once: returns `false` (and
    /// leaves the existing tap in place) if one is already attached.
    /// The tap sees every served answer from this point on; see
    /// [`ServeTap`] for the cheapness contract.
    pub fn set_serve_tap(&self, tap: Arc<dyn ServeTap<S>>) -> bool {
        self.inner.tap.set(tap).is_ok()
    }

    /// Generation number of the live model.
    pub fn model_generation(&self) -> u64 {
        self.inner.slot.read().expect("slot lock").number
    }

    /// Stops accepting new requests; already-queued work still drains.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Snapshot of all server counters, the breaker, and the
    /// degradation-ladder counters. A typed view over the same registry
    /// [`SelectorServer::metrics_snapshot`] exports: both read the same
    /// cells, so the two can never disagree.
    pub fn report(&self) -> ServerReport {
        let m = &self.inner.metrics;
        let served_cnn = m.served_cnn.get();
        let served_tree = m.served_tree.get();
        let served_default = m.served_default.get();
        let served_cache = m.served_cache.get();
        // Every generation shares the registry, so the live service's
        // handles already hold the totals across all generations.
        let ladder = self.inner.slot.read().expect("slot lock").service.report();
        ServerReport {
            submitted: m.submitted.get(),
            shed: m.shed.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            served: served_cnn + served_tree + served_default + served_cache,
            served_cnn,
            served_tree,
            served_default,
            served_cache,
            batched_served: m.path_batched.get(),
            single_served: m.path_single.get(),
            cache: ServeCacheReport {
                hits: served_cache,
                misses: m.cache_miss.get(),
                stale: m.cache_stale.get(),
                expired: m.cache_expired.get(),
                inserted: m.cache_inserted.get(),
                updated: m.cache_updated.get(),
                evicted: m.cache_evicted.get(),
                entries: m.cache_entries.get(),
            },
            deadline_in_queue: m.deadline_in_queue.get(),
            deadline_in_flight: m.deadline_in_flight.get(),
            breaker_demoted: m.breaker_demoted.get(),
            probes_ok: m.probes_ok.get(),
            probes_failed: m.probes_failed.get(),
            reloads_ok: m.reloads_ok.get(),
            reloads_rejected: m.reloads_rejected.get(),
            model_generation: self.model_generation(),
            breaker: self.inner.breaker.snapshot(),
            ladder,
        }
    }

    /// The server's metrics registry (shared with every model
    /// generation). Exporters and benchmarks snapshot it directly.
    pub fn registry(&self) -> &Registry {
        &self.inner.metrics.registry
    }

    /// A consistent snapshot of every server metric — counters, queue
    /// and in-flight gauges, and (when [`ServerConfig::latency_metrics`]
    /// is on) the queue-wait and handle-time histograms.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.registry.snapshot()
    }
}

impl<S: Scalar> Drop for SelectorServer<S> {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Loads a selector artefact, retrying *transient* failures (I/O) up
/// to `attempts` times with a doubling backoff. Non-transient failures
/// — bad checksum, wrong kind or version, structurally invalid model —
/// fail immediately: retrying cannot fix a corrupt artefact.
pub fn load_selector_with_retry(
    path: &Path,
    attempts: u32,
    backoff: Duration,
    sleep: &dyn Fn(Duration),
) -> Result<FormatSelector, SelectorError> {
    let attempts = attempts.max(1);
    let mut wait = backoff;
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            sleep(wait);
            wait = wait.saturating_mul(2);
        }
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::SERVE_RELOAD_READ) {
            // An injected read failure is transient by definition: it
            // burns this attempt and the retry loop carries on.
            last = Some(SelectorError::Io(
                "chaos: injected transient artefact read failure".into(),
            ));
            continue;
        }
        match FormatSelector::load(path) {
            Ok(s) => return Ok(s),
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt was made"))
}

fn is_transient(e: &SelectorError) -> bool {
    matches!(e, SelectorError::Io(_) | SelectorError::Nn(NnError::Io(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_clock() -> (Arc<AtomicU64>, ClockFn) {
        let t = Arc::new(AtomicU64::new(0));
        let tc = Arc::clone(&t);
        (t, Arc::new(move || tc.load(Ordering::SeqCst)))
    }

    fn cfg_100ns() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_backoff: Duration::from_nanos(100),
            max_backoff: Duration::from_nanos(400),
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let b = Breaker::new(cfg_100ns());
        assert_eq!(b.gate(0), Gate::Allow);
        b.on_failure(false, 0);
        b.on_failure(false, 0);
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        b.on_failure(false, 10);
        assert_eq!(b.snapshot().state, BreakerState::Open);
        // Denied while the backoff runs.
        assert_eq!(b.gate(50), Gate::Deny);
        // Backoff expired: exactly one probe, everyone else denied.
        assert_eq!(b.gate(110), Gate::Probe);
        assert_eq!(b.gate(111), Gate::Deny);
        b.on_success(true);
        let s = b.snapshot();
        assert_eq!(s.state, BreakerState::Closed);
        assert_eq!((s.to_open, s.to_half_open, s.to_closed), (1, 1, 1));
    }

    #[test]
    fn failed_probe_doubles_backoff_up_to_cap() {
        let b = Breaker::new(cfg_100ns());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        assert_eq!(b.gate(100), Gate::Probe);
        b.on_failure(true, 100);
        let s = b.snapshot();
        assert_eq!(s.state, BreakerState::Open);
        assert_eq!(s.current_backoff_ns, 200);
        // Still within the doubled backoff at t=250.
        assert_eq!(b.gate(250), Gate::Deny);
        assert_eq!(b.gate(300), Gate::Probe);
        b.on_failure(true, 300);
        assert_eq!(b.snapshot().current_backoff_ns, 400);
        // Third failed probe: doubling is capped at max_backoff.
        assert_eq!(b.gate(700), Gate::Probe);
        b.on_failure(true, 700);
        assert_eq!(b.snapshot().current_backoff_ns, 400, "capped");
        // A successful probe resets the backoff to the initial value.
        assert_eq!(b.gate(1100), Gate::Probe);
        b.on_success(true);
        assert_eq!(b.snapshot().current_backoff_ns, 100);
    }

    #[test]
    fn abandoned_probe_frees_the_slot() {
        let b = Breaker::new(cfg_100ns());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        assert_eq!(b.gate(100), Gate::Probe);
        assert_eq!(b.gate(100), Gate::Deny);
        b.abandon_probe();
        assert_eq!(b.gate(101), Gate::Probe);
    }

    #[test]
    fn late_failures_do_not_extend_the_open_period() {
        let b = Breaker::new(cfg_100ns());
        for _ in 0..3 {
            b.on_failure(false, 10);
        }
        let opened = b.snapshot().to_open;
        // A request admitted before the trip fails afterwards.
        b.on_failure(false, 90);
        assert_eq!(b.snapshot().to_open, opened);
        assert_eq!(b.gate(110), Gate::Probe);
    }

    #[test]
    fn transient_read_errors_retry_then_succeed() {
        let dir = std::env::temp_dir().join(format!("dnnspmv-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late-model.json");
        let _ = std::fs::remove_file(&path);
        // The artefact appears only after the first failed attempt —
        // the injectable sleep doubles as the "file system catches up"
        // fault window. An invalid-but-present artefact then still
        // fails, proving the retry loop stops on non-transient errors.
        let slept = std::cell::Cell::new(0u32);
        let waits = std::cell::RefCell::new(Vec::new());
        let sleep = |d: Duration| {
            slept.set(slept.get() + 1);
            waits.borrow_mut().push(d);
            std::fs::write(&path, b"{").unwrap();
        };
        let err = load_selector_with_retry(&path, 3, Duration::from_millis(5), &sleep)
            .expect_err("a truncated artefact must be rejected without further retries");
        assert!(matches!(err, SelectorError::Nn(_)));
        assert_eq!(slept.get(), 1, "non-transient error stops the retries");
        assert_eq!(waits.borrow()[0], Duration::from_millis(5));
        let _ = std::fs::remove_file(&path);
        // Persistent absence exhausts every attempt with doubling waits.
        let waits2 = std::cell::RefCell::new(Vec::new());
        let sleep2 = |d: Duration| waits2.borrow_mut().push(d);
        let err = load_selector_with_retry(&path, 3, Duration::from_millis(5), &sleep2)
            .expect_err("missing artefact");
        assert!(is_transient(&err));
        assert_eq!(
            *waits2.borrow(),
            vec![Duration::from_millis(5), Duration::from_millis(10)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_without_predictors_serves_default_and_accounts_exactly() {
        let (_, clock) = fake_clock();
        let svc = SelectorService::new(None, None).unwrap();
        let server: SelectorServer<f32> =
            SelectorServer::with_parts(svc, ServerConfig::default(), ServeHooks::default(), clock);
        let m = CooMatrix::from_triplets(4, 4, &[(0, 0, 1.0f32), (3, 3, 2.0)]).unwrap();
        for _ in 0..5 {
            let sel = server.select(&m).unwrap();
            assert_eq!(sel.source, SelectionSource::Default);
        }
        let r = server.report();
        assert_eq!(r.submitted, 5);
        assert_eq!(r.served_default, 5);
        assert_eq!(r.accounted(), r.submitted);
        server.shutdown();
        assert!(matches!(server.select(&m), Err(ServeError::ShuttingDown)));
        assert_eq!(server.report().rejected_shutdown, 1);
    }

    #[test]
    fn half_open_probe_slot_has_exactly_one_winner_under_contention() {
        // When the open backoff expires, every worker that dequeues a
        // request calls `gate` at effectively the same instant. The
        // half-open contract is a single in-flight probe: one winner,
        // everyone else answers from the tree. Race eight threads at
        // the transition repeatedly to give an atomicity bug every
        // chance to double-probe.
        for round in 0..64u64 {
            let b = Breaker::new(cfg_100ns());
            for _ in 0..3 {
                b.on_failure(false, 0);
            }
            let now = 100 + round;
            let barrier = std::sync::Barrier::new(8);
            let probes: usize = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let (b, barrier) = (&b, &barrier);
                        s.spawn(move || {
                            barrier.wait();
                            (b.gate(now) == Gate::Probe) as usize
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(probes, 1, "round {round}: one probe slot, one winner");
            let s = b.snapshot();
            assert_eq!(s.state, BreakerState::HalfOpen);
            assert_eq!(s.to_half_open, 1, "round {round}: a single transition");
            // The winner reports back: the breaker closes exactly once.
            b.on_success(true);
            let s = b.snapshot();
            assert_eq!((s.state, s.to_closed), (BreakerState::Closed, 1));
        }
    }

    #[test]
    fn clock_rewind_mid_run_keeps_serving_and_accounting() {
        // A host clock jumping backwards (VM migration, time sync) must
        // read as "no time passed": elapsed arithmetic saturates, no
        // debug-mode underflow panic, deadlines never mis-fire, and the
        // request ledger still balances.
        let clock = dnnspmv_obs::ManualClock::starting_at(1_000_000);
        let svc = SelectorService::new(None, None).unwrap();
        let server: SelectorServer<f32> = SelectorServer::with_parts(
            svc,
            ServerConfig {
                cache: CacheConfig::enabled(64),
                ..ServerConfig::default()
            },
            ServeHooks::default(),
            clock.as_clock_fn(),
        );
        let m = Arc::new(CooMatrix::from_triplets(4, 4, &[(0, 0, 1.0f32), (3, 3, 2.0)]).unwrap());
        for i in 0..10u64 {
            if i % 2 == 0 {
                clock.advance(500_000);
            } else {
                clock.rewind(900_000);
            }
            let sel = if i % 3 == 0 {
                server
                    .submit(Arc::clone(&m), Some(Duration::from_secs(1)))
                    .unwrap()
                    .wait()
                    .unwrap()
            } else {
                server.select(m.as_ref()).unwrap()
            };
            assert_eq!(sel.source, SelectionSource::Default);
        }
        // Rewind all the way to zero mid-flight and keep serving.
        clock.rewind(u64::MAX);
        assert_eq!(clock.now(), 0);
        server.select(m.as_ref()).unwrap();
        let r = server.report();
        assert_eq!(r.submitted, 11);
        assert_eq!(r.accounted(), r.submitted, "ledger balances after rewinds");
        assert_eq!(r.deadline_in_queue + r.deadline_in_flight, 0);
    }
}
