//! Deterministic failpoint registry.
//!
//! A *failpoint* is a named site in production code where a fault can
//! be injected: an error return, a panic, or added latency. Sites are
//! declared with the [`failpoint!`] macro (or, for bespoke injections,
//! guarded by [`should_fail`]) and are **zero cost unless this crate is
//! built with the `enabled` feature** — the macro's no-op definition is
//! selected by a `cfg` evaluated in *this* crate, so downstream code
//! compiles to exactly what it would be without any failpoints at all.
//! Consuming crates expose their own `chaos` feature that forwards to
//! `dnnspmv-chaos/enabled`.
//!
//! # Determinism and replay
//!
//! A [`Schedule`] maps site names to a rule: an [`Action`] (what to
//! inject) plus a [`Trigger`] (when to fire). Install it with
//! [`configure`] together with a global seed. Every trigger decision
//! is a pure function of `(seed, site name, per-site call ordinal)`:
//! counting triggers (`every`, `after`) consult only the ordinal, and
//! the probabilistic trigger draws from a per-site splitmix64 stream
//! seeded by `seed ^ fnv1a64(site)` that advances exactly once per
//! call to that site. Thread interleaving therefore cannot change
//! which *ordinal* of a site fires — re-running a workload that calls
//! each site the same number of times under the same `(seed,
//! schedule)` fires the same ordinals with the same actions. Every
//! fire is appended to an ordered [`trace`] for post-mortem diffing.
//!
//! # Site catalogue
//!
//! Well-known site names live in [`sites`] as constants, each with the
//! set of actions its host code is designed to absorb (a panic at a
//! site that no `catch_unwind` covers would kill a worker — that is a
//! finding, not a schedule). [`Schedule::random`] draws only from a
//! site's allowed actions, which is what the chaos-soak adversary uses.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Duration;

/// Whether the failpoint machinery is compiled in. `false` means every
/// `failpoint!` expands to nothing and [`should_fail`] is a constant.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// FNV-1a 64-bit hash — keyed per-site PRNG streams and nothing else.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64: tiny, seedable, and good enough for fire/no-fire draws.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// What a firing failpoint injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// The site's error path: `failpoint!(site, expr)` early-returns
    /// `expr`; [`should_fail`] returns `true`.
    Err,
    /// `panic!` with a message naming the site and ordinal. Only legal
    /// at sites whose host code catches unwinds (see [`sites`]).
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
}

impl Action {
    /// The action class without parameters — schedule generation picks
    /// a kind from a site's allowed set, then parameterises it.
    pub fn kind(&self) -> ActionKind {
        match self {
            Action::Err => ActionKind::Err,
            Action::Panic => ActionKind::Panic,
            Action::Delay(_) => ActionKind::Delay,
        }
    }
}

/// Parameter-free action class (see [`Action::kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Error-return injection.
    Err,
    /// Panic injection.
    Panic,
    /// Latency injection.
    Delay,
}

/// When a failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every call.
    Always,
    /// Calls whose 1-based ordinal is a multiple of `n`.
    Every(u64),
    /// Every call after the first `n`.
    After(u64),
    /// Each call independently with probability `p`, drawn from the
    /// site's seeded stream.
    Prob(f64),
}

/// One site's programming: action, trigger, and an optional cap on the
/// number of fires (e.g. `x1` = fire once, then fall silent).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Failpoint site name this rule applies to.
    pub site: String,
    /// What to inject when the trigger fires.
    pub action: Action,
    /// When to fire.
    pub trigger: Trigger,
    /// Fire at most this many times (`None` = unlimited).
    pub limit: Option<u64>,
}

/// A full programming of the registry: one [`Rule`] per site.
///
/// The text form round-trips through [`fmt::Display`] / [`FromStr`]:
/// rules are `site=action[@trigger][xLIMIT]` joined by `;`, e.g.
/// `journal.append.write=err@every(3);serve.cnn.forward=panic@p(0.25)x2`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// The per-site rules, in declaration order (one per site; a later
    /// rule for the same site replaces the earlier at install time).
    pub rules: Vec<Rule>,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Err => write!(f, "err"),
            Action::Panic => write!(f, "panic"),
            Action::Delay(ms) => write!(f, "delay({ms})"),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Always => write!(f, "always"),
            Trigger::Every(n) => write!(f, "every({n})"),
            Trigger::After(n) => write!(f, "after({n})"),
            Trigger::Prob(p) => write!(f, "p({p})"),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.site, self.action)?;
        if self.trigger != Trigger::Always {
            write!(f, "@{}", self.trigger)?;
        }
        if let Some(n) = self.limit {
            write!(f, "x{n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Why a schedule string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad schedule: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_paren_arg<'a>(s: &'a str, name: &str) -> Result<&'a str, ParseError> {
    let rest = s
        .strip_prefix(name)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| ParseError(format!("expected {name}(..), got '{s}'")))?;
    Ok(rest)
}

impl FromStr for Rule {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let (site, rest) = s
            .split_once('=')
            .ok_or_else(|| ParseError(format!("missing '=' in rule '{s}'")))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(ParseError(format!("empty site name in rule '{s}'")));
        }
        // Split off an `xLIMIT` suffix if present (the limit follows
        // the trigger, and no trigger spelling contains a bare 'x').
        let rest = rest.trim();
        let (rest, limit) = match rest.rsplit_once('x') {
            Some((head, tail)) if tail.chars().all(|c| c.is_ascii_digit()) && !tail.is_empty() => {
                let n: u64 = tail
                    .parse()
                    .map_err(|_| ParseError(format!("bad limit '{tail}'")))?;
                (head, Some(n))
            }
            _ => (rest, None),
        };
        let (action_s, trigger_s) = match rest.split_once('@') {
            Some((a, t)) => (a.trim(), Some(t.trim())),
            None => (rest.trim(), None),
        };
        let action = match action_s {
            "err" => Action::Err,
            "panic" => Action::Panic,
            s if s.starts_with("delay") => {
                let ms: u64 = parse_paren_arg(s, "delay")?
                    .parse()
                    .map_err(|_| ParseError(format!("bad delay in '{s}'")))?;
                Action::Delay(ms.min(10_000))
            }
            other => return Err(ParseError(format!("unknown action '{other}'"))),
        };
        let trigger = match trigger_s {
            None | Some("always") => Trigger::Always,
            Some(t) if t.starts_with("every") => {
                let n: u64 = parse_paren_arg(t, "every")?
                    .parse()
                    .map_err(|_| ParseError(format!("bad every in '{t}'")))?;
                if n == 0 {
                    return Err(ParseError("every(0) never fires; use a limit".into()));
                }
                Trigger::Every(n)
            }
            Some(t) if t.starts_with("after") => {
                let n: u64 = parse_paren_arg(t, "after")?
                    .parse()
                    .map_err(|_| ParseError(format!("bad after in '{t}'")))?;
                Trigger::After(n)
            }
            Some(t) if t.starts_with('p') => {
                let p: f64 = parse_paren_arg(t, "p")?
                    .parse()
                    .map_err(|_| ParseError(format!("bad probability in '{t}'")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(ParseError(format!("probability {p} outside [0, 1]")));
                }
                Trigger::Prob(p)
            }
            Some(other) => return Err(ParseError(format!("unknown trigger '{other}'"))),
        };
        Ok(Rule {
            site: site.to_string(),
            action,
            trigger,
            limit,
        })
    }
}

impl FromStr for Schedule {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut rules = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            rules.push(part.parse::<Rule>()?);
        }
        Ok(Schedule { rules })
    }
}

impl Schedule {
    /// A schedule with no rules — every site stays silent.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Draws a random multi-site schedule from `pool`, seeded: the
    /// result is a pure function of `(seed, pool)`. Picks between one
    /// and `max_rules` distinct sites; each gets an action from its
    /// allowed set and a random trigger. This is the chaos-soak
    /// adversary's generator.
    pub fn random(seed: u64, pool: &[SiteSpec], max_rules: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x0005_eedc_4a05_u64);
        let max_rules = max_rules.clamp(1, pool.len().max(1));
        let n_rules = 1 + rng.next_below(max_rules as u64) as usize;
        let mut picked: Vec<usize> = Vec::new();
        let mut rules = Vec::new();
        while picked.len() < n_rules && picked.len() < pool.len() {
            let i = rng.next_below(pool.len() as u64) as usize;
            if picked.contains(&i) {
                continue;
            }
            picked.push(i);
            let spec = &pool[i];
            let kind = spec.allowed[rng.next_below(spec.allowed.len() as u64) as usize];
            let action = match kind {
                ActionKind::Err => Action::Err,
                ActionKind::Panic => Action::Panic,
                ActionKind::Delay => Action::Delay(1 + rng.next_below(4)),
            };
            let trigger = match rng.next_below(4) {
                0 => Trigger::Always,
                1 => Trigger::Every(1 + rng.next_below(5)),
                2 => Trigger::After(1 + rng.next_below(10)),
                _ => Trigger::Prob(0.05 + 0.45 * rng.next_f64()),
            };
            // Unlimited `always`/high-probability error storms are
            // legitimate; cap roughly half the rules so most episodes
            // mix transient faults with persistent ones.
            let limit = if rng.next_below(2) == 0 {
                Some(1 + rng.next_below(8))
            } else {
                None
            };
            rules.push(Rule {
                site: spec.name.to_string(),
                action,
                trigger,
                limit,
            });
        }
        Schedule { rules }
    }
}

/// One recorded fire, in global order.
#[derive(Debug, Clone, PartialEq)]
pub struct FireEvent {
    /// Position in the global fire order (0-based).
    pub seq: u64,
    /// Site that fired.
    pub site: String,
    /// 1-based per-site call ordinal at which it fired.
    pub ordinal: u64,
    /// The injected action.
    pub action: Action,
}

impl fmt::Display for FireEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}[call {}] -> {}",
            self.seq, self.site, self.ordinal, self.action
        )
    }
}

/// Per-site evaluation counters from the current configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Times the site was evaluated while scheduled.
    pub calls: u64,
    /// Times it fired.
    pub fires: u64,
}

#[derive(Debug)]
struct SiteState {
    rule: Rule,
    // Consulted only by the enabled-build `should_fail`; kept in the
    // disabled build so `configure` has one shape under either cfg.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    rng: SplitMix64,
    calls: u64,
    fires: u64,
}

#[derive(Debug, Default)]
struct ChaosState {
    sites: HashMap<String, SiteState>,
    trace: Vec<FireEvent>,
    seq: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<ChaosState> {
    static STATE: OnceLock<Mutex<ChaosState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(ChaosState::default()))
}

fn lock_state() -> std::sync::MutexGuard<'static, ChaosState> {
    // A panic *while holding the lock* never happens (injected panics
    // are raised after release), but a panicking holder elsewhere must
    // not wedge the whole registry.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `schedule` under `seed`, resetting all per-site counters
/// and the fire trace. Process-wide: episodes must not overlap.
pub fn configure(seed: u64, schedule: &Schedule) {
    let mut st = lock_state();
    st.sites.clear();
    st.trace.clear();
    st.seq = 0;
    for rule in &schedule.rules {
        st.sites.insert(
            rule.site.clone(),
            SiteState {
                rule: rule.clone(),
                rng: SplitMix64::new(seed ^ fnv1a64(rule.site.as_bytes())),
                calls: 0,
                fires: 0,
            },
        );
    }
    ARMED.store(!st.sites.is_empty(), Ordering::Release);
}

/// Parses and installs a schedule string (see [`Schedule`]).
pub fn configure_str(seed: u64, schedule: &str) -> Result<(), ParseError> {
    let sched: Schedule = schedule.parse()?;
    configure(seed, &sched);
    Ok(())
}

/// Clears the schedule; all sites fall silent. Counters and the trace
/// of the finished episode remain readable until the next `configure`.
pub fn deactivate() {
    // Sites are retained (only disarmed) so the episode's counters and
    // trace stay readable; `configure` clears them for the next one.
    let _st = lock_state();
    ARMED.store(false, Ordering::Release);
}

/// The ordered fire trace of the current (or just-finished) episode.
pub fn trace() -> Vec<FireEvent> {
    lock_state().trace.clone()
}

/// Per-site call/fire counters, sorted by site name.
pub fn site_stats() -> Vec<SiteStats> {
    let st = lock_state();
    let mut v: Vec<SiteStats> = st
        .sites
        .values()
        .map(|s| SiteStats {
            site: s.rule.site.clone(),
            calls: s.calls,
            fires: s.fires,
        })
        .collect();
    v.sort_by(|a, b| a.site.cmp(&b.site));
    v
}

/// Evaluates the failpoint `site`: returns `true` when an [`Action::Err`]
/// rule fires (the caller takes its error path), handles `Panic` and
/// `Delay` internally, returns `false` when the site is unscheduled or
/// the trigger stays quiet. This is what [`failpoint!`] expands to; call
/// it directly only for bespoke injections the macro forms cannot
/// express (e.g. poisoning a value instead of returning an error).
#[cfg(feature = "enabled")]
pub fn should_fail(site: &str) -> bool {
    if !ARMED.load(Ordering::Acquire) {
        return false;
    }
    let fired = {
        let mut st = lock_state();
        let seq = st.seq;
        let Some(s) = st.sites.get_mut(site) else {
            return false;
        };
        s.calls += 1;
        let ordinal = s.calls;
        let hit = match s.rule.trigger {
            Trigger::Always => true,
            Trigger::Every(n) => ordinal % n == 0,
            Trigger::After(n) => ordinal > n,
            // Draw exactly once per call so the stream position always
            // equals the ordinal — the determinism contract.
            Trigger::Prob(p) => s.rng.next_f64() < p,
        };
        let hit = hit && s.rule.limit.is_none_or(|cap| s.fires < cap);
        if !hit {
            return false;
        }
        s.fires += 1;
        let action = s.rule.action;
        let event = FireEvent {
            seq,
            site: site.to_string(),
            ordinal,
            action,
        };
        st.trace.push(event);
        st.seq = seq + 1;
        action
    };
    // Lock released: panics must not poison the registry, and delays
    // must not serialise unrelated sites.
    match fired {
        Action::Err => true,
        Action::Panic => panic!("chaos: injected panic at failpoint '{site}'"),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
    }
}

/// Disabled-build stub: never fires. Kept so bespoke call sites can be
/// written without their own `cfg` when that reads better.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn should_fail(_site: &str) -> bool {
    false
}

/// Declares a failpoint site.
///
/// - `failpoint!("site")` — absorbs `Panic`/`Delay` actions; an `Err`
///   action is recorded in the trace but otherwise ignored (the site
///   has no error path).
/// - `failpoint!("site", expr)` — additionally `return expr;` when an
///   `Err` action fires. `expr` is evaluated lazily, only on fire.
///
/// With the `enabled` feature off this expands to nothing: the site
/// name and the error expression disappear from the compiled crate.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        let _ = $crate::should_fail($site);
    };
    ($site:expr, $err:expr) => {
        if $crate::should_fail($site) {
            return $err;
        }
    };
}

/// No-op definition selected when the `enabled` feature is off.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {};
    ($site:expr, $err:expr) => {};
}

/// A catalogued site: its name and the actions its host code absorbs.
#[derive(Debug, Clone, Copy)]
pub struct SiteSpec {
    /// The site name as passed to [`failpoint!`].
    pub name: &'static str,
    /// Actions the surrounding code is designed to survive. `Panic`
    /// appears only where an unwind boundary is in place.
    pub allowed: &'static [ActionKind],
}

/// The well-known failpoint site catalogue.
///
/// Names are `layer.component.operation`. Keeping them here (rather
/// than scattered string literals) gives the soak adversary an
/// enumerable pool and DESIGN.md a single source of truth.
pub mod sites {
    use super::{ActionKind, SiteSpec};
    use ActionKind::{Delay, Err, Panic};

    // --- artefact / checkpoint I/O (crates/nn) ---
    /// Envelope tmp-file creation/write (short write ≈ storage full).
    pub const ENVELOPE_WRITE: &str = "nn.envelope.write";
    /// Envelope fsync before rename.
    pub const ENVELOPE_FSYNC: &str = "nn.envelope.fsync";
    /// Envelope tmp → final rename.
    pub const ENVELOPE_RENAME: &str = "nn.envelope.rename";
    /// Training-step gradient poisoning (non-finite loss).
    pub const TRAIN_STEP: &str = "nn.train.step";
    /// Per-epoch checkpoint write.
    pub const TRAIN_CHECKPOINT: &str = "nn.train.checkpoint";
    /// Checkpoint read on resume.
    pub const TRAIN_RESUME: &str = "nn.train.resume";

    // --- serving (crates/core) ---
    /// Queue admission in `submit`.
    pub const SERVE_ADMISSION: &str = "serve.queue.admission";
    /// Representation extraction ahead of the CNN.
    pub const SERVE_REPR_EXTRACT: &str = "serve.repr.extract";
    /// The CNN forward pass (err ⇒ non-finite output).
    pub const SERVE_CNN_FORWARD: &str = "serve.cnn.forward";
    /// Batch gather latency on the worker.
    pub const SERVE_BATCH_GATHER: &str = "serve.batch.gather";
    /// Decision-cache shard lookup (err ⇒ treated as a miss).
    pub const SERVE_CACHE_LOOKUP: &str = "serve.cache.lookup";
    /// Decision-cache shard store (err ⇒ decision not cached).
    pub const SERVE_CACHE_STORE: &str = "serve.cache.store";
    /// Hot-reload artefact read (err ⇒ transient I/O, retried).
    pub const SERVE_RELOAD_READ: &str = "serve.reload.read";

    // --- feedback lane (crates/feedback) ---
    /// Sampler queue admission (err ⇒ shed + counted).
    pub const FEEDBACK_SAMPLER_ENQUEUE: &str = "feedback.sampler.enqueue";
    /// Worker-side re-timing of a sampled request.
    pub const FEEDBACK_SAMPLER_RETIME: &str = "feedback.sampler.retime";
    /// Journal frame write (err ⇒ `StorageFull`).
    pub const JOURNAL_APPEND: &str = "feedback.journal.append";
    /// Journal fsync.
    pub const JOURNAL_FSYNC: &str = "feedback.journal.fsync";
    /// Journal segment rotation (atomic create of the next segment).
    pub const JOURNAL_ROTATE: &str = "feedback.journal.rotate";
    /// Drift-detector comparison recording (err ⇒ comparison dropped).
    pub const DRIFT_RECORD: &str = "feedback.drift.record";
    /// Holdout re-training inside `evolve` (err ⇒ typed abort).
    pub const EVOLVE_TRAIN: &str = "feedback.evolve.train";

    /// Every catalogued site with its absorbable action set.
    pub const CATALOG: &[SiteSpec] = &[
        SiteSpec {
            name: ENVELOPE_WRITE,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: ENVELOPE_FSYNC,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: ENVELOPE_RENAME,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: TRAIN_STEP,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: TRAIN_CHECKPOINT,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: TRAIN_RESUME,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: SERVE_ADMISSION,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: SERVE_REPR_EXTRACT,
            allowed: &[Panic, Delay],
        },
        SiteSpec {
            name: SERVE_CNN_FORWARD,
            allowed: &[Err, Panic, Delay],
        },
        SiteSpec {
            name: SERVE_BATCH_GATHER,
            allowed: &[Delay],
        },
        SiteSpec {
            name: SERVE_CACHE_LOOKUP,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: SERVE_CACHE_STORE,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: SERVE_RELOAD_READ,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: FEEDBACK_SAMPLER_ENQUEUE,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: FEEDBACK_SAMPLER_RETIME,
            allowed: &[Err, Panic, Delay],
        },
        SiteSpec {
            name: JOURNAL_APPEND,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: JOURNAL_FSYNC,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: JOURNAL_ROTATE,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: DRIFT_RECORD,
            allowed: &[Err, Delay],
        },
        SiteSpec {
            name: EVOLVE_TRAIN,
            allowed: &[Err, Delay],
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_through_display() {
        let text = "feedback.journal.append=err@every(3);serve.cnn.forward=panic@p(0.25)x2;\
                    serve.batch.gather=delay(5)@after(10);nn.train.step=err";
        let sched: Schedule = text.parse().expect("parses");
        assert_eq!(sched.rules.len(), 4);
        assert_eq!(sched.rules[0].trigger, Trigger::Every(3));
        assert_eq!(sched.rules[1].limit, Some(2));
        assert_eq!(sched.rules[2].action, Action::Delay(5));
        assert_eq!(sched.rules[3].trigger, Trigger::Always);
        let printed = sched.to_string();
        let reparsed: Schedule = printed.parse().expect("round-trip parses");
        assert_eq!(reparsed, sched, "Display/FromStr round-trip");
    }

    #[test]
    fn schedule_rejects_malformed_rules() {
        for bad in [
            "no_equals",
            "a=explode",
            "a=err@sometimes",
            "a=err@p(1.5)",
            "a=err@every(0)",
            "a=delay(abc)",
            "=err",
        ] {
            assert!(bad.parse::<Schedule>().is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn random_schedules_are_seed_deterministic_and_respect_allowed_actions() {
        let a = Schedule::random(42, sites::CATALOG, 5);
        let b = Schedule::random(42, sites::CATALOG, 5);
        assert_eq!(a, b, "same seed, same schedule");
        let c = Schedule::random(43, sites::CATALOG, 5);
        assert_ne!(a, c, "different seed should (here) differ");
        for seed in 0..200 {
            let s = Schedule::random(seed, sites::CATALOG, 5);
            assert!(!s.rules.is_empty() && s.rules.len() <= 5);
            let mut names: Vec<&str> = s.rules.iter().map(|r| r.site.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), s.rules.len(), "sites are distinct");
            for r in &s.rules {
                let spec = sites::CATALOG
                    .iter()
                    .find(|sp| sp.name == r.site)
                    .expect("site from catalogue");
                assert!(
                    spec.allowed.contains(&r.action.kind()),
                    "{}: action {:?} not allowed",
                    r.site,
                    r.action
                );
            }
        }
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::MutexGuard;

        // The registry is process-global; enabled-mode tests must not
        // interleave their configure/eval windows.
        fn serial() -> MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            GATE.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn counting_triggers_fire_on_exact_ordinals() {
            let _g = serial();
            configure_str(1, "a=err@every(3);b=err@after(2)x2").expect("parses");
            let a: Vec<bool> = (0..9).map(|_| should_fail("a")).collect();
            assert_eq!(
                a,
                [false, false, true, false, false, true, false, false, true]
            );
            let b: Vec<bool> = (0..6).map(|_| should_fail("b")).collect();
            assert_eq!(
                b,
                [false, false, true, true, false, false],
                "after(2) capped at 2 fires"
            );
            assert!(!should_fail("unscheduled"), "unscheduled sites are silent");
            let trace = trace();
            assert_eq!(trace.len(), 5);
            assert!(
                trace.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
                "trace seq is dense and ordered"
            );
            deactivate();
        }

        #[test]
        fn prob_trigger_replays_bit_identically_per_seed() {
            let _g = serial();
            let run = |seed: u64| -> Vec<bool> {
                configure_str(seed, "p.site=err@p(0.5)").expect("parses");
                (0..64).map(|_| should_fail("p.site")).collect()
            };
            let first = run(7);
            assert_eq!(first, run(7), "same seed replays bit-identically");
            assert_ne!(first, run(8), "different seed, different draws");
            assert!(first.iter().any(|&f| f) && !first.iter().all(|&f| f));
            deactivate();
        }

        #[test]
        fn stats_count_calls_and_fires_and_reset_on_configure() {
            let _g = serial();
            configure_str(3, "s=err@every(2)").expect("parses");
            for _ in 0..10 {
                let _ = should_fail("s");
            }
            let st = site_stats();
            assert_eq!(st.len(), 1);
            assert_eq!((st[0].calls, st[0].fires), (10, 5));
            configure_str(3, "s=err@every(2)").expect("parses");
            assert_eq!(site_stats()[0].calls, 0, "configure resets counters");
            assert!(trace().is_empty(), "configure resets the trace");
            deactivate();
        }

        #[test]
        fn injected_panic_names_the_site_and_spares_the_registry() {
            let _g = serial();
            configure_str(9, "boom=panic x1").expect("parses");
            let err =
                std::panic::catch_unwind(|| should_fail("boom")).expect_err("panic action panics");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("boom"), "panic names the site: {msg}");
            // The registry still works after the unwind.
            assert!(!should_fail("boom"), "x1 cap exhausted");
            assert_eq!(site_stats()[0].fires, 1);
            deactivate();
        }
    }
}
