//! Block-sampling representations: binary and density maps.
//!
//! Both map the `m x n` matrix onto an `s x s` grid of blocks; entry
//! `(r, c)` lands in cell `(r*s/m, c*s/n)`. For matrices smaller than
//! the grid this spreads entries over a sparse sub-grid (the analogue
//! of interpolation for upscaled images); for larger matrices it is the
//! paper's down-sampling.

use crate::image::Image;
use crate::{CancelCheck, CANCEL_STRIDE};
use dnnspmv_sparse::{CooMatrix, Scalar};

#[inline]
fn cell(idx: usize, extent: usize, grid: usize) -> usize {
    // idx * grid / extent, guarded against idx == extent-1 rounding.
    (idx * grid / extent).min(grid - 1)
}

/// Shared scatter loop: applies `f(r, c)` to every nonzero, checking
/// `cancel` every [`CANCEL_STRIDE`] entries. `false` means cancelled.
fn scatter<S: Scalar>(
    matrix: &CooMatrix<S>,
    cancel: Option<CancelCheck>,
    mut f: impl FnMut(usize, usize),
) -> bool {
    for (i, (r, c, _)) in matrix.iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            if let Some(cb) = cancel {
                if cb() {
                    return false;
                }
            }
        }
        f(r, c);
    }
    true
}

/// Binary down-sampling (Figure 4b): cell is 1 iff its block contains
/// at least one nonzero.
pub fn binary<S: Scalar>(matrix: &CooMatrix<S>, size: usize) -> Image {
    binary_impl(matrix, size, None).expect("no cancellation requested")
}

/// [`binary`] with a cancellation checkpoint; `None` once `cancel`
/// reports `true`.
pub fn binary_with_cancel<S: Scalar>(
    matrix: &CooMatrix<S>,
    size: usize,
    cancel: CancelCheck,
) -> Option<Image> {
    binary_impl(matrix, size, Some(cancel))
}

fn binary_impl<S: Scalar>(
    matrix: &CooMatrix<S>,
    size: usize,
    cancel: Option<CancelCheck>,
) -> Option<Image> {
    assert!(size > 0, "representation size must be positive");
    let mut im = Image::zeros(size, size);
    let (m, n) = (matrix.nrows(), matrix.ncols());
    let done = scatter(matrix, cancel, |r, c| {
        *im.get_mut(cell(r, m, size), cell(c, n, size)) = 1.0;
    });
    done.then_some(im)
}

/// Density map (Figure 5a): cell holds `nnz(block) / |block|`, a value
/// in `[0, 1]` capturing within-block variation the binary map loses.
pub fn density<S: Scalar>(matrix: &CooMatrix<S>, size: usize) -> Image {
    density_impl(matrix, size, None).expect("no cancellation requested")
}

/// [`density`] with a cancellation checkpoint; `None` once `cancel`
/// reports `true`.
pub fn density_with_cancel<S: Scalar>(
    matrix: &CooMatrix<S>,
    size: usize,
    cancel: CancelCheck,
) -> Option<Image> {
    density_impl(matrix, size, Some(cancel))
}

fn density_impl<S: Scalar>(
    matrix: &CooMatrix<S>,
    size: usize,
    cancel: Option<CancelCheck>,
) -> Option<Image> {
    assert!(size > 0, "representation size must be positive");
    let (m, n) = (matrix.nrows(), matrix.ncols());
    let mut counts = Image::zeros(size, size);
    let done = scatter(matrix, cancel, |r, c| {
        *counts.get_mut(cell(r, m, size), cell(c, n, size)) += 1.0;
    });
    if !done {
        return None;
    }
    // Exact block areas: the number of source rows/cols mapping to each
    // grid index (uneven when the extent does not divide the grid).
    let band_sizes = |extent: usize| -> Vec<f32> {
        let mut sizes = vec![0f32; size];
        for i in 0..extent {
            sizes[cell(i, extent, size)] += 1.0;
        }
        sizes
    };
    let row_sizes = band_sizes(m);
    let col_sizes = band_sizes(n);
    for (rb, &rs) in row_sizes.iter().enumerate() {
        for (cb, &cs) in col_sizes.iter().enumerate() {
            let area = rs * cs;
            if area > 0.0 {
                *counts.get_mut(rb, cb) /= area;
            }
        }
    }
    Some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8x8 example of Figure 4a: an irregular near-diagonal matrix
    /// (reconstructed so Figures 4b, 5a and 5b all come out exactly).
    fn figure4a() -> CooMatrix<f32> {
        CooMatrix::from_triplets(
            8,
            8,
            &[
                (0, 0, 45.0),
                (1, 1, -25.0),
                (2, 2, 89.0),
                (2, 3, 37.0),
                (3, 2, 43.0),
                (3, 3, 94.0),
                (4, 0, 77.0),
                (4, 5, 15.0),
                (5, 4, 78.0),
                (5, 5, 36.0),
                (6, 7, 23.0),
                (7, 3, 17.0),
                (7, 6, 11.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn binary_reproduces_figure_4b() {
        // Down-sampling 8x8 -> 4x4 turns Figure 4a into the "perfect
        // diagonal-ish" Figure 4b — the information loss the paper
        // calls out.
        let im = binary(&figure4a(), 4);
        let expect = [
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            1.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 1.0,
        ];
        assert_eq!(im.data(), &expect);
    }

    #[test]
    fn density_reproduces_figure_5a() {
        let im = density(&figure4a(), 4);
        let expect = [
            0.5, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.25, 0.0, 0.75, 0.0, //
            0.0, 0.25, 0.0, 0.5,
        ];
        for (got, want) in im.data().iter().zip(&expect) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn binary_values_are_zero_or_one() {
        let m = figure4a();
        let im = binary(&m, 3);
        assert!(im.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn density_bounded_by_one_even_with_uneven_blocks() {
        // 5x5 over a 3x3 grid: uneven block areas (2,2,1 bands).
        let t: Vec<_> = (0..5)
            .flat_map(|i| (0..5).map(move |j| (i, j, 1.0f32)))
            .collect();
        let dense = CooMatrix::from_triplets(5, 5, &t).unwrap();
        let im = density(&dense, 3);
        for &v in im.data() {
            assert!(
                (v - 1.0).abs() < 1e-6,
                "fully dense block should be 1, got {v}"
            );
        }
    }

    #[test]
    fn small_matrix_upscales_onto_sparse_grid() {
        // 2x2 identity onto an 8x8 grid: exactly two pixels set.
        let m = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32), (1, 1, 1.0)]).unwrap();
        let im = binary(&m, 8);
        assert_eq!(im.count_nonzero(), 2);
        assert_eq!(im.get(0, 0), 1.0);
        assert_eq!(im.get(4, 4), 1.0);
    }

    #[test]
    fn rectangular_matrices_map_both_axes() {
        let m = CooMatrix::from_triplets(4, 16, &[(3, 15, 1.0f32), (0, 0, 1.0)]).unwrap();
        let im = binary(&m, 4);
        assert_eq!(im.get(0, 0), 1.0);
        assert_eq!(im.get(3, 3), 1.0);
        assert_eq!(im.count_nonzero(), 2);
    }

    #[test]
    fn empty_matrix_gives_blank_images() {
        let m = CooMatrix::<f32>::empty(10, 10).unwrap();
        assert_eq!(binary(&m, 4).sum(), 0.0);
        assert_eq!(density(&m, 4).sum(), 0.0);
    }
}
