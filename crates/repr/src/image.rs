//! Tiny dense 2-D `f32` image type shared by all representations.

use serde::{Deserialize, Serialize};

/// Row-major `f32` image of fixed shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Image {
    /// Zero-filled image.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "image dimensions must be positive");
        Self {
            height,
            width,
            data: vec![0.0; height * width],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != height * width`.
    pub fn from_vec(height: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), height * width, "data length must match shape");
        assert!(height > 0 && width > 0, "image dimensions must be positive");
        Self {
            height,
            width,
            data,
        }
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.width + c]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.width + c]
    }

    /// Row-major pixel data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the image, returning its pixel buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Divides every pixel by the maximum (no-op for all-zero images),
    /// bringing values into `[0, 1]` as the paper's Section 4 requires.
    pub fn normalize_max(&mut self) {
        let max = self.data.iter().copied().fold(0.0f32, f32::max);
        if max > 0.0 {
            for v in &mut self.data {
                *v /= max;
            }
        }
    }

    /// Sum of all pixels.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Count of nonzero pixels.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_sum() {
        let im = Image::zeros(3, 5);
        assert_eq!((im.height(), im.width()), (3, 5));
        assert_eq!(im.sum(), 0.0);
        assert_eq!(im.count_nonzero(), 0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut im = Image::zeros(2, 2);
        *im.get_mut(1, 0) = 3.5;
        assert_eq!(im.get(1, 0), 3.5);
        assert_eq!(im.count_nonzero(), 1);
    }

    #[test]
    fn normalize_max_scales_to_unit() {
        let mut im = Image::from_vec(1, 4, vec![0.0, 2.0, 4.0, 1.0]);
        im.normalize_max();
        assert_eq!(im.data(), &[0.0, 0.5, 1.0, 0.25]);
    }

    #[test]
    fn normalize_all_zero_is_noop() {
        let mut im = Image::zeros(2, 2);
        im.normalize_max();
        assert_eq!(im.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_shape() {
        let _ = Image::from_vec(2, 2, vec![0.0; 5]);
    }
}
