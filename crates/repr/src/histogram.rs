//! Distance-histogram representation (Algorithm 1 of the paper).
//!
//! Each nonzero contributes to a 2-D histogram indexed by (a) which
//! band of rows (or columns) it lies in and (b) the binned distance
//! `|row - col|` from the main diagonal. Because the second axis is a
//! *distance*, diagonal structure is represented exactly at any output
//! size — the property the block-sampling representations lack — and
//! the two axes (row bands x distance bins) can be sized independently
//! (the paper uses 128 x 50).

use crate::image::Image;
use crate::{CancelCheck, CANCEL_STRIDE};
use dnnspmv_sparse::{CooMatrix, Scalar};

/// Shared Algorithm 1 loop over row bands (`by_cols == false`) or
/// column bands (`by_cols == true`), with an optional cancellation
/// checkpoint every [`CANCEL_STRIDE`] nonzeros.
fn histogram_counts_impl<S: Scalar>(
    matrix: &CooMatrix<S>,
    bands: usize,
    bins: usize,
    by_cols: bool,
    cancel: Option<CancelCheck>,
) -> Option<Image> {
    assert!(bands > 0 && bins > 0, "histogram shape must be positive");
    let mut im = Image::zeros(bands, bins);
    let max_dim = matrix.nrows().max(matrix.ncols());
    let extent = if by_cols {
        matrix.ncols()
    } else {
        matrix.nrows()
    };
    for (i, (r, c, _)) in matrix.iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            if let Some(cb) = cancel {
                if cb() {
                    return None;
                }
            }
        }
        let pos = if by_cols { c } else { r };
        let band = (pos * bands / extent).min(bands - 1);
        let dist = r.abs_diff(c);
        let bin = (dist * bins / max_dim).min(bins - 1);
        *im.get_mut(band, bin) += 1.0;
    }
    Some(im)
}

/// Raw (unnormalised) row histogram: `R[row_band][dist_bin]` counts the
/// nonzeros of that row band at that diagonal distance. This is
/// Algorithm 1 verbatim.
pub fn row_histogram_counts<S: Scalar>(matrix: &CooMatrix<S>, bands: usize, bins: usize) -> Image {
    histogram_counts_impl(matrix, bands, bins, false, None).expect("no cancellation requested")
}

/// Raw column histogram: the same construction over column bands.
pub fn col_histogram_counts<S: Scalar>(matrix: &CooMatrix<S>, bands: usize, bins: usize) -> Image {
    histogram_counts_impl(matrix, bands, bins, true, None).expect("no cancellation requested")
}

/// Row histogram normalised to `[0, 1]` by its maximum (the form fed to
/// the CNN).
pub fn row_histogram<S: Scalar>(matrix: &CooMatrix<S>, bands: usize, bins: usize) -> Image {
    let mut im = row_histogram_counts(matrix, bands, bins);
    im.normalize_max();
    im
}

/// Column histogram normalised to `[0, 1]` by its maximum.
pub fn col_histogram<S: Scalar>(matrix: &CooMatrix<S>, bands: usize, bins: usize) -> Image {
    let mut im = col_histogram_counts(matrix, bands, bins);
    im.normalize_max();
    im
}

/// [`row_histogram`] with a cancellation checkpoint; `None` once
/// `cancel` reports `true`.
pub fn row_histogram_with_cancel<S: Scalar>(
    matrix: &CooMatrix<S>,
    bands: usize,
    bins: usize,
    cancel: CancelCheck,
) -> Option<Image> {
    let mut im = histogram_counts_impl(matrix, bands, bins, false, Some(cancel))?;
    im.normalize_max();
    Some(im)
}

/// [`col_histogram`] with a cancellation checkpoint; `None` once
/// `cancel` reports `true`.
pub fn col_histogram_with_cancel<S: Scalar>(
    matrix: &CooMatrix<S>,
    bands: usize,
    bins: usize,
    cancel: CancelCheck,
) -> Option<Image> {
    let mut im = histogram_counts_impl(matrix, bands, bins, true, Some(cancel))?;
    im.normalize_max();
    Some(im)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same Figure 4a fixture as `sample::tests`.
    fn figure4a() -> CooMatrix<f32> {
        CooMatrix::from_triplets(
            8,
            8,
            &[
                (0, 0, 45.0),
                (1, 1, -25.0),
                (2, 2, 89.0),
                (2, 3, 37.0),
                (3, 2, 43.0),
                (3, 3, 94.0),
                (4, 0, 77.0),
                (4, 5, 15.0),
                (5, 4, 78.0),
                (5, 5, 36.0),
                (6, 7, 23.0),
                (7, 3, 17.0),
                (7, 6, 11.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_histogram_reproduces_figure_5b() {
        let im = row_histogram_counts(&figure4a(), 4, 4);
        let expect = [
            2.0, 0.0, 0.0, 0.0, //
            4.0, 0.0, 0.0, 0.0, //
            3.0, 0.0, 1.0, 0.0, //
            2.0, 0.0, 1.0, 0.0,
        ];
        assert_eq!(im.data(), &expect);
    }

    #[test]
    fn algorithm1_worked_example_from_section_4() {
        // "Row 6 contains only one non-zero element (23) at distance 1;
        // bin floor(1/2) = 0 -> R[3][0] += 1. Row 7 has elements at
        // distances 4 and 1 -> bins 2 and 0. Bottom row of R is
        // [2, 0, 1, 0]."
        let im = row_histogram_counts(&figure4a(), 4, 4);
        assert_eq!(&im.data()[12..16], &[2.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn histogram_total_equals_nnz() {
        let m = figure4a();
        let r = row_histogram_counts(&m, 4, 4);
        let c = col_histogram_counts(&m, 4, 4);
        assert_eq!(r.sum(), m.nnz() as f64);
        assert_eq!(c.sum(), m.nnz() as f64);
    }

    #[test]
    fn normalised_histogram_peaks_at_one() {
        let im = row_histogram(&figure4a(), 4, 4);
        let max = im.data().iter().copied().fold(0.0f32, f32::max);
        assert_eq!(max, 1.0);
    }

    #[test]
    fn pure_diagonal_uses_only_bin_zero() {
        let t: Vec<_> = (0..64).map(|i| (i, i, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(64, 64, &t).unwrap();
        let im = row_histogram_counts(&m, 8, 8);
        for band in 0..8 {
            assert_eq!(im.get(band, 0), 8.0);
            for bin in 1..8 {
                assert_eq!(im.get(band, bin), 0.0);
            }
        }
    }

    #[test]
    fn anti_diagonal_spreads_across_bins() {
        let n = 64;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let im = row_histogram_counts(&m, 8, 8);
        // Distances |i - (n-1-i)| cover 1..=63 -> many distinct bins.
        let used_bins: usize = (0..8)
            .map(|bin| ((0..8).any(|band| im.get(band, bin) > 0.0)) as usize)
            .sum();
        assert!(used_bins >= 7, "only {used_bins} bins used");
        // Crucially, this differs from the pure diagonal: the selector
        // can tell them apart even at tiny sizes — unlike binary
        // down-sampling which confuses them (Figure 4).
    }

    #[test]
    fn rectangular_matrix_bins_stay_in_range() {
        let m = CooMatrix::from_triplets(4, 100, &[(0, 99, 1.0f32), (3, 0, 1.0)]).unwrap();
        let rh = row_histogram_counts(&m, 4, 10);
        let ch = col_histogram_counts(&m, 4, 10);
        assert_eq!(rh.sum(), 2.0);
        assert_eq!(ch.sum(), 2.0);
    }

    #[test]
    fn column_histogram_is_row_histogram_of_transpose() {
        let m = figure4a();
        let t = m.transpose();
        assert_eq!(
            col_histogram_counts(&m, 4, 4),
            row_histogram_counts(&t, 4, 4)
        );
    }

    #[test]
    fn empty_matrix_gives_zero_histogram() {
        let m = CooMatrix::<f32>::empty(10, 10).unwrap();
        assert_eq!(row_histogram(&m, 4, 4).sum(), 0.0);
    }
}
