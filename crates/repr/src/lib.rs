//! Fixed-size CNN input representations of sparse matrices.
//!
//! CNNs need constant-size inputs; matrices come in every size. The
//! paper (Section 4) explores three *normalisations* that map an
//! `m x n` matrix onto fixed-size images while keeping the features
//! that drive format selection:
//!
//! * [`binary`] — image-style down-sampling to a `H x W` 0/1 map of
//!   which blocks contain nonzeros. Cheap but lossy: it can turn
//!   irregular near-diagonals into perfect diagonals (Figure 4),
//!   confusing DIA-vs-CSR decisions.
//! * [`density`] — same block grid, but each cell holds the *fraction*
//!   of the block that is nonzero, preserving within-block variation.
//! * [`histogram`] — the paper's best performer: per-row-band (and
//!   per-column-band) histograms of each nonzero's distance to the main
//!   diagonal (Algorithm 1). Distance-based rather than position-based,
//!   so diagonal structure survives normalisation exactly.
//!
//! [`MatrixRepr::extract`] bundles these into the three channel
//! configurations evaluated in Table 2 (`Binary`, `Binary+Density`,
//! `Histogram`), each a list of equally-sized channels that the CNN's
//! towers consume.

pub mod histogram;
pub mod image;
pub mod sample;

pub use histogram::{
    col_histogram, col_histogram_with_cancel, row_histogram, row_histogram_with_cancel,
};
pub use image::Image;
pub use sample::{binary, binary_with_cancel, density, density_with_cancel};

use dnnspmv_sparse::{CooMatrix, Scalar};
use serde::{Deserialize, Serialize};

/// Cooperative-cancellation callback threaded through the extraction
/// loops. Returns `true` when the caller's deadline has passed; the
/// extraction then stops and reports `None` instead of finishing.
/// Checked once per [`CANCEL_STRIDE`] nonzeros, so the callback may be
/// arbitrarily cheap or read a clock without dominating the loop.
pub type CancelCheck<'a> = &'a dyn Fn() -> bool;

/// Nonzeros processed between two cancellation checks. Large enough to
/// make the check free relative to the loop body, small enough that a
/// pathological matrix cannot wedge a worker for more than a few tens
/// of microseconds past its deadline.
pub const CANCEL_STRIDE: usize = 1 << 16;

/// Which representation feeds the CNN (the rows of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReprKind {
    /// One channel: the binary down-sampled map.
    Binary,
    /// Two channels: binary map + density map.
    BinaryDensity,
    /// Two channels: row-distance histogram + column-distance histogram.
    Histogram,
}

impl ReprKind {
    /// All kinds, in Table 2 order.
    pub const ALL: [ReprKind; 3] = [
        ReprKind::Binary,
        ReprKind::BinaryDensity,
        ReprKind::Histogram,
    ];

    /// Number of input channels this representation produces.
    pub fn channels(self) -> usize {
        match self {
            ReprKind::Binary => 1,
            ReprKind::BinaryDensity | ReprKind::Histogram => 2,
        }
    }

    /// Display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            ReprKind::Binary => "CNN+Binary",
            ReprKind::BinaryDensity => "CNN+Binary+Density",
            ReprKind::Histogram => "CNN+Histogram",
        }
    }
}

/// Output sizes of the fixed representations.
///
/// The paper uses 128x128 images and 128x50 histograms; the defaults
/// here are smaller so the full experiment suite runs in minutes (the
/// paper's sizes are exercised by the size-sweep ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReprConfig {
    /// Edge of the square binary/density images.
    pub image_size: usize,
    /// Number of row/column bands in the histograms.
    pub hist_rows: usize,
    /// Number of distance bins in the histograms.
    pub hist_bins: usize,
}

impl Default for ReprConfig {
    fn default() -> Self {
        Self {
            image_size: 64,
            hist_rows: 64,
            hist_bins: 32,
        }
    }
}

impl ReprConfig {
    /// The exact sizes reported in the paper (Section 7.2).
    pub fn paper() -> Self {
        Self {
            image_size: 128,
            hist_rows: 128,
            hist_bins: 50,
        }
    }

    /// Channel shape (height, width) for a representation kind.
    pub fn channel_shape(&self, kind: ReprKind) -> (usize, usize) {
        match kind {
            ReprKind::Binary | ReprKind::BinaryDensity => (self.image_size, self.image_size),
            ReprKind::Histogram => (self.hist_rows, self.hist_bins),
        }
    }
}

/// A normalised matrix: one or two fixed-size channels, all values in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixRepr {
    /// Which representation this is.
    pub kind: ReprKind,
    /// The channels, each of the shape given by
    /// [`ReprConfig::channel_shape`].
    pub channels: Vec<Image>,
}

/// Per-kind extraction timers (`repr_extract_ns{kind}` in the
/// process-wide registry), compiled in only under the `obs` feature so
/// default extraction stays exactly the uninstrumented code.
#[cfg(feature = "obs")]
mod extract_timers {
    use super::ReprKind;
    use dnnspmv_obs::LatencyHistogram;
    use std::sync::{Arc, OnceLock};
    use std::time::Instant;

    fn table() -> &'static [Arc<LatencyHistogram>; 3] {
        static TABLE: OnceLock<[Arc<LatencyHistogram>; 3]> = OnceLock::new();
        TABLE.get_or_init(|| {
            std::array::from_fn(|i| {
                dnnspmv_obs::global()
                    .histogram("repr_extract_ns", &[("kind", ReprKind::ALL[i].name())])
            })
        })
    }

    pub(super) struct ExtractTimer {
        hist: Arc<LatencyHistogram>,
        start: Instant,
    }

    pub(super) fn time(kind: ReprKind) -> ExtractTimer {
        let idx = ReprKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL lists every kind");
        ExtractTimer {
            hist: Arc::clone(&table()[idx]),
            start: Instant::now(),
        }
    }

    impl Drop for ExtractTimer {
        fn drop(&mut self) {
            // Drop also runs when extraction is cancelled mid-way, so
            // abandoned extractions still show up in the distribution —
            // exactly the slow tail a deadline post-mortem needs.
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

impl MatrixRepr {
    /// Normalises `matrix` into the `kind` representation.
    pub fn extract<S: Scalar>(matrix: &CooMatrix<S>, kind: ReprKind, cfg: &ReprConfig) -> Self {
        #[cfg(feature = "obs")]
        let _t = extract_timers::time(kind);
        let channels = match kind {
            ReprKind::Binary => vec![binary(matrix, cfg.image_size)],
            ReprKind::BinaryDensity => vec![
                binary(matrix, cfg.image_size),
                density(matrix, cfg.image_size),
            ],
            ReprKind::Histogram => vec![
                row_histogram(matrix, cfg.hist_rows, cfg.hist_bins),
                col_histogram(matrix, cfg.hist_rows, cfg.hist_bins),
            ],
        };
        Self { kind, channels }
    }

    /// Like [`MatrixRepr::extract`], but checks `cancel` every
    /// [`CANCEL_STRIDE`] nonzeros and returns `None` as soon as it
    /// reports `true` — the hook a serving layer uses to enforce
    /// per-request deadlines on pathological inputs.
    pub fn extract_with_cancel<S: Scalar>(
        matrix: &CooMatrix<S>,
        kind: ReprKind,
        cfg: &ReprConfig,
        cancel: CancelCheck,
    ) -> Option<Self> {
        #[cfg(feature = "obs")]
        let _t = extract_timers::time(kind);
        let channels = match kind {
            ReprKind::Binary => vec![binary_with_cancel(matrix, cfg.image_size, cancel)?],
            ReprKind::BinaryDensity => vec![
                binary_with_cancel(matrix, cfg.image_size, cancel)?,
                density_with_cancel(matrix, cfg.image_size, cancel)?,
            ],
            ReprKind::Histogram => vec![
                row_histogram_with_cancel(matrix, cfg.hist_rows, cfg.hist_bins, cancel)?,
                col_histogram_with_cancel(matrix, cfg.hist_rows, cfg.hist_bins, cancel)?,
            ],
        };
        Some(Self { kind, channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: usize) -> CooMatrix<f32> {
        let t: Vec<_> = (0..n).map(|i| (i, i, 1.0f32)).collect();
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn channel_counts_match_kind() {
        let cfg = ReprConfig {
            image_size: 8,
            hist_rows: 8,
            hist_bins: 4,
        };
        let m = diag(32);
        for kind in ReprKind::ALL {
            let r = MatrixRepr::extract(&m, kind, &cfg);
            assert_eq!(r.channels.len(), kind.channels(), "{kind:?}");
            let (h, w) = cfg.channel_shape(kind);
            for ch in &r.channels {
                assert_eq!((ch.height(), ch.width()), (h, w));
            }
        }
    }

    #[test]
    fn all_values_are_normalised() {
        let m = diag(100);
        let cfg = ReprConfig::default();
        for kind in ReprKind::ALL {
            let r = MatrixRepr::extract(&m, kind, &cfg);
            for ch in &r.channels {
                for &v in ch.data() {
                    assert!((0.0..=1.0).contains(&v), "{kind:?}: value {v}");
                }
            }
        }
    }

    #[test]
    fn names_match_paper_headers() {
        assert_eq!(ReprKind::Histogram.name(), "CNN+Histogram");
        assert_eq!(ReprKind::BinaryDensity.name(), "CNN+Binary+Density");
    }

    #[test]
    fn cancellation_stops_extraction_on_every_kind() {
        use std::cell::Cell;
        let m = diag(64);
        let cfg = ReprConfig {
            image_size: 8,
            hist_rows: 8,
            hist_bins: 4,
        };
        for kind in ReprKind::ALL {
            // Never cancelled: identical to the plain extraction.
            let r = MatrixRepr::extract_with_cancel(&m, kind, &cfg, &|| false).unwrap();
            assert_eq!(r, MatrixRepr::extract(&m, kind, &cfg));
            // Cancelled from the start: aborts at the first checkpoint.
            assert!(MatrixRepr::extract_with_cancel(&m, kind, &cfg, &|| true).is_none());
            // The checkpoint is actually polled, not just consulted once.
            let polls = Cell::new(0u32);
            let cancel_on_second = || {
                polls.set(polls.get() + 1);
                polls.get() > 1
            };
            let _ = MatrixRepr::extract_with_cancel(&m, kind, &cfg, &cancel_on_second);
            assert!(polls.get() >= 1, "{kind:?}");
        }
    }

    #[test]
    fn paper_config_matches_section_7() {
        let p = ReprConfig::paper();
        assert_eq!(p.image_size, 128);
        assert_eq!((p.hist_rows, p.hist_bins), (128, 50));
    }
}
