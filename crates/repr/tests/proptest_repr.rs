//! Property tests for the fixed-size representations.

use dnnspmv_repr::{
    binary, col_histogram, density,
    histogram::{col_histogram_counts, row_histogram_counts},
    row_histogram, MatrixRepr, ReprConfig, ReprKind,
};
use dnnspmv_sparse::CooMatrix;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CooMatrix<f32>> {
    (2usize..60, 2usize..60).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 0.1f32..4.0);
        proptest::collection::vec(entry, 0..150)
            .prop_map(move |t| CooMatrix::from_triplets(m, n, &t).expect("in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_counts_sum_to_nnz(m in arb_matrix(), bands in 1usize..20, bins in 1usize..20) {
        let r = row_histogram_counts(&m, bands, bins);
        let c = col_histogram_counts(&m, bands, bins);
        prop_assert_eq!(r.sum() as usize, m.nnz());
        prop_assert_eq!(c.sum() as usize, m.nnz());
    }

    #[test]
    fn normalised_outputs_are_unit_range(m in arb_matrix(), size in 2usize..24) {
        for im in [
            binary(&m, size),
            density(&m, size),
            row_histogram(&m, size, size),
            col_histogram(&m, size, size),
        ] {
            for &v in im.data() {
                prop_assert!((0.0..=1.0).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn binary_support_matches_density_support(m in arb_matrix(), size in 2usize..24) {
        let b = binary(&m, size);
        let d = density(&m, size);
        for (x, y) in b.data().iter().zip(d.data()) {
            prop_assert_eq!(*x > 0.0, *y > 0.0, "binary/density support mismatch");
        }
    }

    #[test]
    fn binary_nonzero_cells_bounded_by_nnz(m in arb_matrix(), size in 2usize..24) {
        let b = binary(&m, size);
        prop_assert!(b.count_nonzero() <= m.nnz().min(size * size));
    }

    #[test]
    fn density_weighted_sum_equals_nnz(m in arb_matrix(), size in 2usize..16) {
        // Sum over cells of density * block_area == nnz. Reconstruct
        // block areas the same way the implementation defines them.
        let d = density(&m, size);
        let band = |extent: usize| {
            let mut sizes = vec![0f64; size];
            for i in 0..extent {
                sizes[(i * size / extent).min(size - 1)] += 1.0;
            }
            sizes
        };
        let rows = band(m.nrows());
        let cols = band(m.ncols());
        let mut total = 0.0;
        for (r, &rs) in rows.iter().enumerate() {
            for (c, &cs) in cols.iter().enumerate() {
                total += d.get(r, c) as f64 * rs * cs;
            }
        }
        prop_assert!((total - m.nnz() as f64).abs() < 1e-3 * (1.0 + m.nnz() as f64));
    }

    #[test]
    fn extraction_is_deterministic(m in arb_matrix()) {
        let cfg = ReprConfig { image_size: 16, hist_rows: 16, hist_bins: 8 };
        for kind in ReprKind::ALL {
            let a = MatrixRepr::extract(&m, kind, &cfg);
            let b = MatrixRepr::extract(&m, kind, &cfg);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn transpose_swaps_row_and_col_histograms(m in arb_matrix(), bands in 2usize..12, bins in 2usize..12) {
        let t = m.transpose();
        prop_assert_eq!(
            row_histogram_counts(&m, bands, bins),
            col_histogram_counts(&t, bands, bins)
        );
    }
}
