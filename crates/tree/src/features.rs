//! Hand-crafted matrix features in the SMAT tradition.
//!
//! These summarise exactly the quantities the SMAT papers feed their
//! trees: problem size, row-length distribution (ELL's enemy is row
//! skew), diagonal occupancy (DIA's fill), block fill (BSR), and how
//! empty the matrix is (COO vs CSR row-pointer overhead). All features
//! are scale-normalised or log-compressed so trees see comparable
//! ranges across matrix sizes.

use dnnspmv_sparse::{CooMatrix, MatrixStats, Scalar};

/// Number of features [`features`] produces.
///
/// The set follows SMAT (Li et al., PLDI'13) faithfully: problem sizes,
/// the row-length distribution moments (aver_RD / max_RD / var_RD), the
/// ELL padding ratio (ER_RD), diagonal counts and the DIA fill ratio
/// (Ndiags / NTdiags_ratio / ER_DIA), density, and the empty-row
/// fraction. Quantities SMAT did not use (block fill, bandwidth,
/// distance moments) are deliberately absent — the paper's argument is
/// precisely that hand-picked scalar features miss spatial structure.
pub const NUM_FEATURES: usize = 11;

/// Human-readable feature names, parallel to [`features`] output.
pub fn feature_names() -> [&'static str; NUM_FEATURES] {
    [
        "log_nrows",
        "log_ncols",
        "log_nnz",
        "density",
        "row_mean",
        "row_cv",
        "row_max_over_ncols",
        "ell_fill",
        "ndiags_over_dims",
        "dia_fill",
        "empty_row_fraction",
    ]
}

/// Extracts the feature vector of one matrix.
pub fn features<S: Scalar>(matrix: &CooMatrix<S>) -> Vec<f64> {
    features_from_stats(&MatrixStats::compute(matrix))
}

/// Extracts features from precomputed statistics (avoids a second pass
/// when the stats are already needed elsewhere).
pub fn features_from_stats(s: &MatrixStats) -> Vec<f64> {
    let dims = (s.nrows + s.ncols) as f64;
    vec![
        (s.nrows as f64).ln(),
        (s.ncols as f64).ln(),
        (s.nnz.max(1) as f64).ln(),
        s.density,
        s.row_mean,
        s.row_cv,
        s.row_max as f64 / s.ncols as f64,
        s.ell_fill,
        s.ndiags as f64 / dims,
        s.dia_fill,
        s.empty_rows as f64 / s.nrows as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> CooMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn feature_count_and_names_agree() {
        let f = features(&tridiag(32));
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(feature_names().len(), NUM_FEATURES);
    }

    #[test]
    fn features_are_finite() {
        let f = features(&tridiag(100));
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        // Even a minimal matrix must not produce NaN/inf.
        let m = CooMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        let f = features(&m);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }

    #[test]
    fn banded_matrix_has_high_dia_fill_feature() {
        let f = features(&tridiag(64));
        let names = feature_names();
        let dia_fill = f[names.iter().position(|&n| n == "dia_fill").unwrap()];
        assert!(dia_fill > 0.9, "dia_fill = {dia_fill}");
    }

    #[test]
    fn skewed_matrix_has_high_cv_feature() {
        let mut t: Vec<_> = (1..64).map(|i| (i, i, 1.0)).collect();
        t.extend((0..64).map(|j| (0usize, j, 1.0)));
        let m = CooMatrix::from_triplets(64, 64, &t).unwrap();
        let f = features(&m);
        let cv = f[feature_names().iter().position(|&n| n == "row_cv").unwrap()];
        assert!(cv > 1.5, "row_cv = {cv}");
    }

    #[test]
    fn hypersparse_matrix_has_high_empty_fraction() {
        let m = CooMatrix::from_triplets(100, 100, &[(0, 0, 1.0), (99, 99, 1.0)]).unwrap();
        let f = features(&m);
        let idx = feature_names()
            .iter()
            .position(|&n| n == "empty_row_fraction")
            .unwrap();
        assert!(f[idx] > 0.9);
    }

    #[test]
    fn features_scale_sensibly_with_size() {
        let small = features(&tridiag(16));
        let large = features(&tridiag(256));
        // log sizes grow, fills stay comparable.
        assert!(large[0] > small[0]);
        assert!((large[9] - small[9]).abs() < 0.1, "dia_fill drifted");
    }
}
