//! CART classification tree trained by Gini-impurity splits.

use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Number of classes.
    pub n_classes: usize,
}

impl TreeConfig {
    /// Sensible defaults for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 8,
            n_classes,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Majority class.
        class: usize,
        /// Class histogram at the leaf (kept for introspection).
        counts: Vec<usize>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// `x[feature] <= threshold` branch.
        left: Box<Node>,
        /// `x[feature] > threshold` branch.
        right: Box<Node>,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    root: Node,
    n_features: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

impl DecisionTree {
    /// Trains a tree on feature rows `x` with class labels `y`.
    ///
    /// # Panics
    /// Panics on empty input, ragged feature rows, or labels outside
    /// `0..n_classes`.
    pub fn train(x: &[Vec<f64>], y: &[usize], config: TreeConfig) -> Self {
        assert!(!x.is_empty(), "training set must not be empty");
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        let n_features = x[0].len();
        assert!(
            x.iter().all(|r| r.len() == n_features),
            "ragged feature rows"
        );
        assert!(
            y.iter().all(|&l| l < config.n_classes),
            "label outside 0..n_classes"
        );
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = Self::grow(x, y, &idx, &config, 0);
        Self {
            config,
            root,
            n_features,
        }
    }

    fn class_counts(y: &[usize], idx: &[usize], k: usize) -> Vec<usize> {
        let mut counts = vec![0usize; k];
        for &i in idx {
            counts[y[i]] += 1;
        }
        counts
    }

    fn grow(x: &[Vec<f64>], y: &[usize], idx: &[usize], cfg: &TreeConfig, depth: usize) -> Node {
        let counts = Self::class_counts(y, idx, cfg.n_classes);
        let node_gini = gini(&counts, idx.len());
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || node_gini == 0.0 {
            return Node::Leaf {
                class: majority(&counts),
                counts,
            };
        }
        // Exhaustive best-split search: for each feature, sweep sorted
        // values maintaining incremental left/right class counts.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let n_features = x[0].len();
        let total = idx.len() as f64;
        // `f` indexes a column across many rows of `x`, not one slice,
        // so the range loop is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_unstable_by(|&a, &b| {
                x[a][f].partial_cmp(&x[b][f]).expect("features are finite")
            });
            let mut left = vec![0usize; cfg.n_classes];
            let mut right = counts.clone();
            for w in 0..order.len() - 1 {
                let i = order[w];
                left[y[i]] += 1;
                right[y[i]] -= 1;
                let (a, b) = (x[order[w]][f], x[order[w + 1]][f]);
                if a == b {
                    continue; // cannot split between equal values
                }
                let nl = w + 1;
                let nr = order.len() - nl;
                let score =
                    (nl as f64 / total) * gini(&left, nl) + (nr as f64 / total) * gini(&right, nr);
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, (a + b) / 2.0, score));
                }
            }
        }
        match best {
            Some((feature, threshold, score)) if score < node_gini - 1e-12 => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                // A degenerate split cannot happen (threshold strictly
                // separates two distinct values), but guard anyway.
                if li.is_empty() || ri.is_empty() {
                    return Node::Leaf {
                        class: majority(&counts),
                        counts,
                    };
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::grow(x, y, &li, cfg, depth + 1)),
                    right: Box::new(Self::grow(x, y, &ri, cfg, depth + 1)),
                }
            }
            _ => Node::Leaf {
                class: majority(&counts),
                counts,
            },
        }
    }

    /// Predicts the class of one feature row.
    ///
    /// # Panics
    /// Panics if the row width differs from the training data.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Fraction of `(x, y)` rows predicted correctly.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let hit = x
            .iter()
            .zip(y)
            .filter(|(row, &l)| self.predict(row) == l)
            .count();
        hit as f64 / x.len() as f64
    }

    /// Feature-row width this tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes this tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.config.n_classes
    }

    /// Structural validation for trees rebuilt from serialized data.
    ///
    /// Training establishes these invariants by construction, but
    /// serde's derived `Deserialize` rebuilds fields verbatim — a
    /// corrupted or hand-edited file can hold split feature indices
    /// past the row width (an out-of-bounds panic in [`Self::predict`])
    /// or leaf classes past `n_classes`. Walks every node and reports
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.config.n_classes == 0 {
            return Err("tree declares zero classes".into());
        }
        fn walk(n: &Node, n_features: usize, n_classes: usize, depth: usize) -> Result<(), String> {
            match n {
                Node::Leaf { class, counts } => {
                    if *class >= n_classes {
                        return Err(format!(
                            "leaf class {class} outside 0..{n_classes} (depth {depth})"
                        ));
                    }
                    if counts.len() != n_classes {
                        return Err(format!(
                            "leaf histogram has {} bins, expected {n_classes} (depth {depth})",
                            counts.len()
                        ));
                    }
                    Ok(())
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if *feature >= n_features {
                        return Err(format!(
                            "split on feature {feature} but rows have {n_features} (depth {depth})"
                        ));
                    }
                    if !threshold.is_finite() {
                        return Err(format!("non-finite split threshold at depth {depth}"));
                    }
                    walk(left, n_features, n_classes, depth + 1)?;
                    walk(right, n_features, n_classes, depth + 1)
                }
            }
        }
        walk(&self.root, self.n_features, self.config.n_classes, 0)
    }

    /// Number of decision nodes plus leaves.
    pub fn node_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Tree depth (leaf-only tree = 0).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // XOR needs two levels of splits — a single threshold fails.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f64 + 0.01 * (i as f64 % 7.0);
            let b = ((i / 2) % 2) as f64 + 0.013 * (i as f64 % 5.0);
            x.push(vec![a, b]);
            y.push(((a.round() as usize) ^ (b.round() as usize)) & 1);
        }
        (x, y)
    }

    #[test]
    fn learns_a_single_threshold() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        assert_eq!(t.accuracy(&x, &y), 1.0);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.predict(&[3.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            max_depth: 4,
            min_samples_split: 2,
            n_classes: 2,
        };
        let t = DecisionTree::train(&x, &y, cfg);
        assert_eq!(t.accuracy(&x, &y), 1.0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
            n_classes: 2,
        };
        let t = DecisionTree::train(&x, &y, cfg);
        assert!(t.depth() <= 1);
        // XOR cannot be solved at depth 1.
        assert!(t.accuracy(&x, &y) < 0.9);
    }

    #[test]
    fn min_samples_split_stops_growth() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            max_depth: 16,
            min_samples_split: 1000,
            n_classes: 2,
        };
        let t = DecisionTree::train(&x, &y, cfg);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let t = DecisionTree::train(&x, &y, TreeConfig::new(3));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn constant_features_yield_majority_leaf() {
        let x = vec![vec![5.0]; 10];
        let y = vec![0, 0, 0, 1, 0, 0, 1, 0, 0, 0];
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[5.0]), 0);
    }

    #[test]
    fn multiclass_training_works() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..4usize {
            for i in 0..15 {
                x.push(vec![c as f64 * 10.0 + (i % 3) as f64, (i % 5) as f64]);
                y.push(c);
            }
        }
        let t = DecisionTree::train(&x, &y, TreeConfig::new(4));
        assert_eq!(t.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn serialises_and_round_trips() {
        let (x, y) = xor_data();
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.predict(&x[0]), t.predict(&x[0]));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        let _ = DecisionTree::train(&[], &[], TreeConfig::new(2));
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_width_prediction_panics() {
        let t = DecisionTree::train(&[vec![0.0], vec![1.0]], &[0, 1], TreeConfig::new(2));
        let _ = t.predict(&[0.0, 1.0]);
    }

    #[test]
    fn validate_accepts_trained_trees() {
        let (x, y) = xor_data();
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        assert!(t.validate().is_ok());
        assert_eq!(t.n_features(), 2);
        assert_eq!(t.n_classes(), 2);
    }

    #[test]
    fn validate_catches_out_of_range_split_feature() {
        // Simulate a corrupted on-disk tree: deserialize a payload
        // whose split feature indexes past the row width. Without
        // validation, predict() would panic on the row access.
        let (x, y) = xor_data();
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"feature\":0") || json.contains("\"feature\":1"));
        let mangled = json.replacen("\"feature\":0", "\"feature\":9", 1).replacen(
            "\"feature\":1",
            "\"feature\":9",
            1,
        );
        let bad: DecisionTree = serde_json::from_str(&mangled).unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("feature 9"), "{err}");
    }

    #[test]
    fn validate_catches_out_of_range_leaf_class() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let t = DecisionTree::train(&x, &y, TreeConfig::new(3));
        let json = serde_json::to_string(&t).unwrap();
        let mangled = json.replacen("\"class\":1", "\"class\":7", 1);
        assert_ne!(mangled, json);
        let bad: DecisionTree = serde_json::from_str(&mangled).unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("class 7"), "{err}");
    }

    #[test]
    fn gini_of_pure_and_uniform() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }
}
