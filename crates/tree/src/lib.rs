//! SMAT-style decision-tree baseline for format selection.
//!
//! The paper's state-of-the-art comparator (Li et al.'s SMAT and
//! Sedaghati et al.'s GPU selector) is a decision tree over hand-crafted
//! matrix features. This crate reimplements that approach: a feature
//! extractor distilling the structural statistics the SMAT line of work
//! uses (sizes, row-length distribution, diagonal occupancy, padding
//! ratios, block fill) and a CART tree trained by Gini-impurity splits.
//!
//! The point of the paper is that this baseline tops out around 85%
//! accuracy because the hand-crafted features lose spatial information
//! the CNN keeps — reproduced by the Table 2/3 experiments.

pub mod cart;
pub mod features;

pub use cart::{DecisionTree, TreeConfig};
pub use features::{feature_names, features, NUM_FEATURES};
