//! Property tests for the CART tree and feature extractor.

use dnnspmv_sparse::CooMatrix;
use dnnspmv_tree::{features, DecisionTree, TreeConfig, NUM_FEATURES};
use proptest::prelude::*;

fn arb_labelled_data() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>, usize)> {
    (2usize..5, 10usize..80).prop_flat_map(|(k, n)| {
        let row = proptest::collection::vec(-10.0f64..10.0, 3..=3);
        (
            proptest::collection::vec(row, n..=n),
            proptest::collection::vec(0usize..k, n..=n),
        )
            .prop_map(move |(x, y)| (x, y, k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn training_never_panics_and_predicts_in_range((x, y, k) in arb_labelled_data()) {
        let t = DecisionTree::train(&x, &y, TreeConfig::new(k));
        for row in &x {
            prop_assert!(t.predict(row) < k);
        }
        // In-sample accuracy is at least the majority-class rate.
        let mut counts = vec![0usize; k];
        for &l in &y {
            counts[l] += 1;
        }
        let majority = *counts.iter().max().expect("k >= 2") as f64 / y.len() as f64;
        prop_assert!(t.accuracy(&x, &y) + 1e-9 >= majority);
    }

    #[test]
    fn deeper_trees_never_fit_worse((x, y, k) in arb_labelled_data()) {
        let shallow = DecisionTree::train(&x, &y, TreeConfig {
            max_depth: 2, min_samples_split: 2, n_classes: k,
        });
        let deep = DecisionTree::train(&x, &y, TreeConfig {
            max_depth: 16, min_samples_split: 2, n_classes: k,
        });
        prop_assert!(deep.accuracy(&x, &y) + 1e-9 >= shallow.accuracy(&x, &y));
    }

    #[test]
    fn prediction_is_deterministic((x, y, k) in arb_labelled_data()) {
        let t = DecisionTree::train(&x, &y, TreeConfig::new(k));
        let u = DecisionTree::train(&x, &y, TreeConfig::new(k));
        for row in &x {
            prop_assert_eq!(t.predict(row), u.predict(row));
        }
    }

    #[test]
    fn perfectly_separable_data_is_learned(n in 8usize..60, gap in 1.0f64..10.0) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * gap]).collect();
        let y: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        let t = DecisionTree::train(&x, &y, TreeConfig::new(2));
        prop_assert_eq!(t.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn matrix_features_are_finite_and_sized(
        m in 1usize..50,
        n in 1usize..50,
        entries in proptest::collection::vec((0usize..50, 0usize..50, 0.1f64..2.0), 0..60),
    ) {
        let t: Vec<_> = entries
            .into_iter()
            .filter(|&(r, c, _)| r < m && c < n)
            .collect();
        let coo = CooMatrix::from_triplets(m, n, &t).expect("filtered in range");
        let f = features(&coo);
        prop_assert_eq!(f.len(), NUM_FEATURES);
        prop_assert!(f.iter().all(|v| v.is_finite()), "{:?}", f);
    }
}
