//! SELL-C-σ (sliced ELLPACK with sorting) — the many-core successor to
//! ELL.
//!
//! Rows are sorted by length inside windows of σ rows, then packed into
//! chunks of C consecutive (sorted) rows; each chunk is padded only to
//! the width of *its own* longest row and stored column-major within the
//! chunk (`vals[chunk_base + k * C + i]` for lane `i`, slot `k`). With
//! sorted windows, rows of similar length share a chunk, so total
//! padding collapses from ELL's `nrows * max_row` to roughly
//! `nnz + C * max_row` — regular SIMD-friendly access without ELL's
//! catastrophic blow-up on skewed matrices (Kreutzer et al.; Chen et
//! al., arXiv:1805.11938).
//!
//! σ = 1 disables sorting entirely (plain SELL-C): no permutation is
//! stored, and both kernels write `y` directly instead of scattering
//! through the row permutation.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default chunk height C. 8 lanes covers AVX-512 doubles and keeps the
/// per-chunk padding bound (`C * width_spread`) small.
pub const DEFAULT_CHUNK: usize = 8;

/// Default sorting window σ. Large enough to act as a near-global sort
/// on the matrix sizes this repo serves, while still bounding how far a
/// row can travel from its original position (locality of the `x`
/// gather survives).
pub const DEFAULT_SIGMA: usize = 4096;

/// Sparse matrix in SELL-C-σ form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SellMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    chunk: usize,
    sigma: usize,
    /// `perm[packed] = original row`; `None` when σ ≤ 1 (identity).
    perm: Option<Vec<u32>>,
    /// Storage offset of each chunk; `len = nchunks + 1`.
    chunk_ptr: Vec<usize>,
    /// True (unpadded) length of each packed row; `len = nrows`.
    row_len: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<S>,
}

impl<S: Scalar> SellMatrix<S> {
    /// Converts from COO with the default C and σ.
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        Self::from_coo_with_params(coo, DEFAULT_CHUNK, DEFAULT_SIGMA)
    }

    /// Converts from COO with explicit chunk height `chunk` (C ≥ 1) and
    /// sorting window `sigma` (σ ≥ 1; σ = 1 means unsorted SELL-C).
    pub fn from_coo_with_params(coo: &CooMatrix<S>, chunk: usize, sigma: usize) -> Self {
        assert!(chunk >= 1, "chunk height C must be at least 1");
        assert!(sigma >= 1, "sorting window sigma must be at least 1");
        let nrows = coo.nrows();
        let ptr = coo.row_offsets();
        let len_of = |r: usize| ptr[r + 1] - ptr[r];

        // σ-window sort: descending length, original index as tiebreak
        // so construction is deterministic.
        let perm = if sigma > 1 {
            let mut order: Vec<u32> = (0..nrows as u32).collect();
            for window in order.chunks_mut(sigma) {
                window.sort_unstable_by_key(|&r| (usize::MAX - len_of(r as usize), r));
            }
            Some(order)
        } else {
            None
        };
        let orig = |packed: usize| -> usize {
            match &perm {
                Some(p) => p[packed] as usize,
                None => packed,
            }
        };

        let nchunks = nrows.div_ceil(chunk);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0usize);
        let mut row_len = vec![0u32; nrows];
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(nrows);
            let mut width = 0usize;
            for (off, slot) in row_len[lo..hi].iter_mut().enumerate() {
                let l = len_of(orig(lo + off));
                *slot = l as u32;
                width = width.max(l);
            }
            chunk_ptr.push(chunk_ptr[c] + chunk * width);
        }

        let slots = chunk_ptr[nchunks];
        let mut cols = vec![0u32; slots];
        let mut vals = vec![S::ZERO; slots];
        let ccols = coo.col_indices();
        let cvals = coo.values();
        for packed in 0..nrows {
            let r = orig(packed);
            let (c, lane) = (packed / chunk, packed % chunk);
            let base = chunk_ptr[c] + lane;
            for (k, j) in (ptr[r]..ptr[r + 1]).enumerate() {
                cols[base + k * chunk] = ccols[j];
                vals[base + k * chunk] = cvals[j];
            }
        }

        Self {
            nrows,
            ncols: coo.ncols(),
            nnz: coo.nnz(),
            chunk,
            sigma,
            perm,
            chunk_ptr,
            row_len,
            cols,
            vals,
        }
    }

    /// Converts back to canonical COO (padding dropped exactly, via the
    /// stored per-row lengths).
    ///
    /// Fallible because a `SellMatrix` can arrive through
    /// deserialization: a hostile payload may violate the invariants
    /// [`Self::from_coo_with_params`] establishes (zero chunk height,
    /// non-monotone `chunk_ptr`, a permutation indexing past the rows,
    /// column indices past `ncols`, …), and those must surface as a
    /// typed error instead of an indexing panic.
    pub fn to_coo(&self) -> Result<CooMatrix<S>, SparseError> {
        self.validate()?;
        let mut b = crate::coo::CooBuilder::new(self.nrows, self.ncols)?;
        b.reserve(self.nnz);
        for packed in 0..self.nrows {
            let r = self.original_row(packed);
            let (c, lane) = (packed / self.chunk, packed % self.chunk);
            let base = self.chunk_ptr[c] + lane;
            for k in 0..self.row_len[packed] as usize {
                let j = base + k * self.chunk;
                b.push(r, self.cols[j] as usize, self.vals[j])?;
            }
        }
        Ok(b.build())
    }

    /// Checks every structural invariant a hostile `Deserialize`
    /// payload could violate. A matrix that passes cannot make
    /// [`Self::to_coo`] or the SpMV kernels index out of bounds.
    pub fn validate(&self) -> Result<(), SparseError> {
        let bad = |m: String| SparseError::InvalidStructure(m);
        if self.chunk < 1 {
            return Err(bad("chunk height C must be at least 1".into()));
        }
        if self.sigma < 1 {
            return Err(bad("sorting window sigma must be at least 1".into()));
        }
        let nchunks = self.nrows.div_ceil(self.chunk);
        if self.chunk_ptr.len() != nchunks + 1 || self.chunk_ptr[0] != 0 {
            return Err(bad(format!(
                "chunk_ptr must hold {} offsets starting at 0, got {}",
                nchunks + 1,
                self.chunk_ptr.len()
            )));
        }
        for c in 0..nchunks {
            let (lo, hi) = (self.chunk_ptr[c], self.chunk_ptr[c + 1]);
            if hi < lo || (hi - lo) % self.chunk != 0 {
                return Err(bad(format!(
                    "chunk_ptr[{c}..={}] = [{lo}, {hi}] is not a monotone multiple of C",
                    c + 1
                )));
            }
        }
        let slots = *self.chunk_ptr.last().expect("length checked above");
        if self.cols.len() != slots || self.vals.len() != slots {
            return Err(bad(format!(
                "chunk_ptr declares {slots} slots but cols/vals hold {}/{}",
                self.cols.len(),
                self.vals.len()
            )));
        }
        if self.row_len.len() != self.nrows {
            return Err(bad(format!(
                "row_len holds {} entries for {} rows",
                self.row_len.len(),
                self.nrows
            )));
        }
        let mut live = 0usize;
        for packed in 0..self.nrows {
            let c = packed / self.chunk;
            let len = self.row_len[packed] as usize;
            if len > self.chunk_width(c) {
                return Err(bad(format!(
                    "row_len[{packed}] = {len} exceeds its chunk width {}",
                    self.chunk_width(c)
                )));
            }
            live += len;
        }
        if live != self.nnz {
            return Err(bad(format!(
                "row lengths sum to {live} but nnz declares {}",
                self.nnz
            )));
        }
        if let Some(p) = &self.perm {
            if p.len() != self.nrows {
                return Err(bad(format!(
                    "perm holds {} entries for {} rows",
                    p.len(),
                    self.nrows
                )));
            }
            let mut seen = vec![false; self.nrows];
            for &r in p {
                let r = r as usize;
                if r >= self.nrows || seen[r] {
                    return Err(bad("perm is not a permutation of the rows".into()));
                }
                seen[r] = true;
            }
        }
        // Live column indices must stay inside the shape; padded slots
        // are never dereferenced by the kernels and stay unchecked.
        for packed in 0..self.nrows {
            let (c, lane) = (packed / self.chunk, packed % self.chunk);
            let base = self.chunk_ptr[c] + lane;
            for k in 0..self.row_len[packed] as usize {
                let col = self.cols[base + k * self.chunk] as usize;
                if col >= self.ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: self.original_row_checked(packed),
                        col,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }

    /// [`Self::original_row`] without trusting `perm` bounds (used in
    /// error paths that run before the permutation is validated).
    fn original_row_checked(&self, packed: usize) -> usize {
        match &self.perm {
            Some(p) => p.get(packed).map_or(packed, |&r| r as usize),
            None => packed,
        }
    }

    /// Chunk height C.
    #[inline]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Sorting window σ (1 means unsorted).
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of C-row chunks. (Saturating: a hostile deserialized
    /// `chunk_ptr` can be empty, which [`Self::validate`] rejects but
    /// this accessor must survive.)
    #[inline]
    pub fn nchunks(&self) -> usize {
        self.chunk_ptr.len().saturating_sub(1)
    }

    /// Padded width of chunk `c` (saturating against hostile
    /// non-monotone offsets or a zero chunk height; see
    /// [`Self::validate`]).
    #[inline]
    pub fn chunk_width(&self, c: usize) -> usize {
        self.chunk_ptr[c + 1].saturating_sub(self.chunk_ptr[c]) / self.chunk.max(1)
    }

    /// Number of logically stored nonzeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of padded slots holding real nonzeros. This is the
    /// number SELL-C-σ exists to maximise where ELL cannot.
    pub fn fill_ratio(&self) -> f64 {
        if self.vals.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.vals.len() as f64
    }

    /// Bytes occupied by the padded arrays plus permutation/offsets.
    pub fn storage_bytes(&self) -> usize {
        self.cols.len() * 4
            + self.vals.len() * S::BYTES
            + self.perm.as_ref().map_or(0, |p| p.len() * 4)
            + self.chunk_ptr.len() * 8
            + self.row_len.len() * 4
    }

    #[inline]
    fn original_row(&self, packed: usize) -> usize {
        match &self.perm {
            Some(p) => p[packed] as usize,
            None => packed,
        }
    }

    /// Computes packed outputs for chunks `c0..c1` into `out`, whose
    /// length must cover exactly those packed rows. The inner loop runs
    /// slot-major so each step reads C contiguous (col, val) pairs —
    /// the lane-parallel access pattern SELL is built around.
    fn chunk_range_kernel(&self, c0: usize, c1: usize, x: &[S], out: &mut [S]) {
        out.fill(S::ZERO);
        let row0 = c0 * self.chunk;
        for c in c0..c1 {
            let lanes = self.chunk.min(self.nrows - c * self.chunk);
            let acc = &mut out[c * self.chunk - row0..][..lanes];
            let width = self.chunk_width(c);
            let mut off = self.chunk_ptr[c];
            for _ in 0..width {
                // Slice per slot column so the lane loop is a
                // bounds-check-free zip over C contiguous pairs.
                let vals = &self.vals[off..off + lanes];
                let cols = &self.cols[off..off + lanes];
                for ((a, v), col) in acc.iter_mut().zip(vals).zip(cols) {
                    *a += *v * x[*col as usize];
                }
                off += self.chunk;
            }
        }
    }

    /// Scatters packed results to their original rows.
    fn scatter(&self, packed: &[S], y: &mut [S]) {
        match &self.perm {
            Some(p) => {
                for (i, &r) in p.iter().enumerate() {
                    y[r as usize] = packed[i];
                }
            }
            None => y.copy_from_slice(packed),
        }
    }
}

impl<S: Scalar> Spmv<S> for SellMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        match &self.perm {
            None => self.chunk_range_kernel(0, self.nchunks(), x, y),
            Some(p) => {
                // Chunk-local scatter: one C-row buffer stays in L1
                // and y is written exactly once, instead of routing
                // the whole result through an nrows-sized packed
                // vector and a second full pass.
                let mut buf = vec![S::ZERO; self.chunk];
                for c in 0..self.nchunks() {
                    let lanes = self.chunk.min(self.nrows - c * self.chunk);
                    self.chunk_range_kernel(c, c + 1, x, &mut buf[..lanes]);
                    for (&r, &v) in p[c * self.chunk..][..lanes].iter().zip(&buf) {
                        y[r as usize] = v;
                    }
                }
            }
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.vals.len() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        // Tasks are whole chunks, so no two threads share a packed row;
        // round the generic chunking policy up to a multiple of C.
        let task_rows = crate::spmv::par_chunk_rows(self.nrows, 4).next_multiple_of(self.chunk);
        let run = |buf: &mut [S]| {
            buf.par_chunks_mut(task_rows)
                .enumerate()
                .for_each(|(t, out)| {
                    let c0 = t * task_rows / self.chunk;
                    let c1 = c0 + out.len().div_ceil(self.chunk);
                    self.chunk_range_kernel(c0, c1, x, out);
                });
        };
        match &self.perm {
            None => run(y),
            Some(_) => {
                let mut packed = vec![S::ZERO; self.nrows];
                run(&mut packed);
                self.scatter(&packed, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ell::EllMatrix;

    fn figure1() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    /// Varying row lengths plus one long outlier: ELL pads every row to
    /// the outlier, unsorted SELL pads per chunk, sorted SELL groups
    /// similar rows so chunks are near-full.
    fn skewed(n: usize) -> CooMatrix<f64> {
        let mut t = Vec::new();
        for j in 0..64.min(n) {
            t.push((0, j, 1.0 + j as f64));
        }
        for i in 1..n {
            for k in 0..1 + i % 8 {
                t.push((i, (i + k * 5) % n, 1.0 + k as f64));
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn round_trip_through_coo() {
        for (chunk, sigma) in [(1, 1), (2, 1), (2, 4), (8, 4096), (3, 2)] {
            let coo = figure1();
            let sell = SellMatrix::from_coo_with_params(&coo, chunk, sigma);
            assert_eq!(sell.to_coo().unwrap(), coo, "C={chunk} sigma={sigma}");
        }
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = figure1();
        let x = [1.0, 2.0, 3.0, 4.0];
        let want = coo.spmv_alloc(&x);
        for (chunk, sigma) in [(1, 1), (2, 1), (2, 4), (8, 4096)] {
            let sell = SellMatrix::from_coo_with_params(&coo, chunk, sigma);
            assert_eq!(sell.spmv_alloc(&x), want, "C={chunk} sigma={sigma}");
        }
    }

    #[test]
    fn sigma_one_stores_no_permutation() {
        let sell = SellMatrix::from_coo_with_params(&figure1(), 2, 1);
        assert!(sell.perm.is_none());
        assert_eq!(sell.sigma(), 1);
    }

    #[test]
    fn sorting_contains_padding_that_ruins_ell() {
        let coo = skewed(512);
        let ell = EllMatrix::from_coo(&coo).unwrap();
        let unsorted = SellMatrix::from_coo_with_params(&coo, 8, 1);
        let sorted = SellMatrix::from_coo_with_params(&coo, 8, 4096);
        // ELL pads every row to 64; sorted SELL pads only the chunk
        // holding the heavy row.
        assert!(ell.fill_ratio() < 0.1);
        assert!(sorted.fill_ratio() > 0.8, "fill {}", sorted.fill_ratio());
        assert!(sorted.storage_bytes() < ell.storage_bytes() / 10);
        // Unsorted SELL already beats ELL (per-chunk widths), sorting
        // beats unsorted (the heavy chunk no longer drags 7 neighbours).
        assert!(unsorted.vals.len() < ell.width() * 512);
        assert!(sorted.vals.len() < unsorted.vals.len());
    }

    #[test]
    fn partial_last_chunk_is_correct() {
        // 7 rows with C = 4: second chunk has 3 live lanes.
        let t: Vec<_> = (0..7)
            .flat_map(|i| [(i, i, 1.0 + i as f64), (i, 6 - i, 0.5)])
            .collect();
        let coo = CooMatrix::from_triplets(7, 7, &t).unwrap();
        let sell = SellMatrix::from_coo_with_params(&coo, 4, 8);
        assert_eq!(sell.nchunks(), 2);
        assert_eq!(sell.to_coo().unwrap(), coo);
        let x: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        assert_eq!(sell.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let coo = CooMatrix::<f64>::empty(5, 5).unwrap();
        let sell = SellMatrix::from_coo(&coo);
        assert_eq!(sell.spmv_alloc(&[1.0; 5]), vec![0.0; 5]);
        assert_eq!(sell.to_coo().unwrap(), coo);
    }

    /// Hostile deserialized shapes surface typed errors, never panics
    /// — the same audit PR 4 ran over the repr hot paths.
    #[test]
    fn hostile_shapes_are_rejected_with_typed_errors() {
        let good = SellMatrix::from_coo_with_params(&figure1(), 2, 4);
        assert!(good.validate().is_ok());

        let mut zero_chunk = good.clone();
        zero_chunk.chunk = 0;
        assert!(matches!(
            zero_chunk.to_coo(),
            Err(SparseError::InvalidStructure(_))
        ));
        // The width accessor itself must also survive C = 0.
        let _ = zero_chunk.chunk_width(0);

        let mut torn_ptr = good.clone();
        torn_ptr.chunk_ptr = vec![];
        assert_eq!(torn_ptr.nchunks(), 0);
        assert!(torn_ptr.to_coo().is_err());

        let mut backwards = good.clone();
        backwards.chunk_ptr = vec![0, 6, 4];
        assert!(matches!(
            backwards.to_coo(),
            Err(SparseError::InvalidStructure(_))
        ));

        let mut oob_perm = good.clone();
        oob_perm.perm = Some(vec![0, 1, 2, 99]);
        assert!(matches!(
            oob_perm.to_coo(),
            Err(SparseError::InvalidStructure(_))
        ));

        let mut dup_perm = good.clone();
        dup_perm.perm = Some(vec![0, 1, 2, 2]);
        assert!(dup_perm.to_coo().is_err());

        let mut oob_col = good.clone();
        // Find a live slot and point it past ncols.
        let base = oob_col.chunk_ptr[0];
        oob_col.cols[base] = 1000;
        assert!(matches!(
            oob_col.to_coo(),
            Err(SparseError::IndexOutOfBounds { .. })
        ));

        let mut long_row = good.clone();
        long_row.row_len[0] = 100;
        assert!(long_row.to_coo().is_err());

        let mut wrong_nnz = good.clone();
        wrong_nnz.nnz = 1;
        assert!(wrong_nnz.to_coo().is_err());
    }

    #[test]
    fn parallel_matches_sequential_with_scatter() {
        let n = 4096;
        let mut t = Vec::new();
        for j in 0..64 {
            t.push((0, j, 1.0 + j as f64));
        }
        for i in 1..n {
            for k in 0..5usize {
                t.push((i, (i * 3 + k * 11) % n, k as f64 - 2.5));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        for sigma in [1, 256, 4096] {
            let sell = SellMatrix::from_coo_with_params(&coo, 8, sigma);
            assert!(sell.vals.len() >= 1 << 14, "large enough to hit par path");
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            sell.spmv(&x, &mut y1);
            sell.spmv_par(&x, &mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn storage_accounts_for_permutation() {
        let coo = figure1();
        let plain = SellMatrix::from_coo_with_params(&coo, 2, 1);
        let sorted = SellMatrix::from_coo_with_params(&coo, 2, 4);
        assert!(sorted.storage_bytes() >= plain.storage_bytes());
    }
}
