//! ELLPACK (ELL) format — fixed-width padded rows.
//!
//! Every row is padded to the width of the longest row, giving perfectly
//! regular access (vectorises well on CPUs, coalesces on GPUs). It wins
//! when row lengths are uniform — the paper notes that "matrices
//! favoring ELL tend to have rows with similar numbers of non-zeros" —
//! and loses badly when one long row inflates the padding.
//!
//! Layout is row-major: `cols[r * width + k]` / `vals[r * width + k]`.
//! Padding slots store column 0 with value zero, which contributes
//! nothing to SpMV.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default cap on the padded row width (`max_row_nnz`). Conversions
/// needing more return [`SparseError::RowTooWide`].
pub const DEFAULT_MAX_WIDTH: usize = 4096;

/// Sparse matrix in ELLPACK form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EllMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    width: usize,
    cols: Vec<u32>,
    vals: Vec<S>,
}

impl<S: Scalar> EllMatrix<S> {
    /// Converts from COO with the default width cap.
    pub fn from_coo(coo: &CooMatrix<S>) -> Result<Self, SparseError> {
        Self::from_coo_with_limit(coo, DEFAULT_MAX_WIDTH)
    }

    /// Converts from COO, failing if the longest row exceeds `max_width`.
    pub fn from_coo_with_limit(coo: &CooMatrix<S>, max_width: usize) -> Result<Self, SparseError> {
        let ptr = coo.row_offsets();
        let width = (0..coo.nrows())
            .map(|r| ptr[r + 1] - ptr[r])
            .max()
            .unwrap_or(0);
        if width > max_width {
            return Err(SparseError::RowTooWide {
                width,
                limit: max_width,
            });
        }
        let nrows = coo.nrows();
        let mut cols = vec![0u32; nrows * width];
        let mut vals = vec![S::ZERO; nrows * width];
        let crows = coo.row_indices();
        let ccols = coo.col_indices();
        let cvals = coo.values();
        for r in 0..nrows {
            for (k, i) in (ptr[r]..ptr[r + 1]).enumerate() {
                debug_assert_eq!(crows[i] as usize, r);
                cols[r * width + k] = ccols[i];
                vals[r * width + k] = cvals[i];
            }
        }
        Ok(Self {
            nrows,
            ncols: coo.ncols(),
            nnz: coo.nnz(),
            width,
            cols,
            vals,
        })
    }

    /// Converts back to canonical COO (padding dropped).
    pub fn to_coo(&self) -> CooMatrix<S> {
        let mut b = crate::coo::CooBuilder::new(self.nrows, self.ncols)
            .expect("shape validated at construction");
        b.reserve(self.nnz);
        for r in 0..self.nrows {
            for k in 0..self.width {
                let v = self.vals[r * self.width + k];
                if v != S::ZERO {
                    b.push(r, self.cols[r * self.width + k] as usize, v)
                        .expect("index in range");
                }
            }
        }
        b.build()
    }

    /// Padded row width (`max_r nnz(r)`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of logically stored nonzeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of padded slots holding real nonzeros; ELL is
    /// competitive only when this is close to 1.
    pub fn fill_ratio(&self) -> f64 {
        if self.vals.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.vals.len() as f64
    }

    /// Bytes occupied by the padded index+value arrays.
    pub fn storage_bytes(&self) -> usize {
        self.cols.len() * 4 + self.vals.len() * S::BYTES
    }

    #[inline]
    fn row_dot(&self, r: usize, x: &[S]) -> S {
        let base = r * self.width;
        let mut acc = S::ZERO;
        for k in 0..self.width {
            acc += self.vals[base + k] * x[self.cols[base + k] as usize];
        }
        acc
    }
}

impl<S: Scalar> Spmv<S> for EllMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            *out = self.row_dot(r, x);
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.vals.len() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        // Rows all cost the same in ELL, so plain chunking balances.
        let chunk = crate::spmv::par_chunk_rows(self.nrows, 4);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, ys)| {
            let base = ci * chunk;
            for (i, out) in ys.iter_mut().enumerate() {
                *out = self.row_dot(base + i, x);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn width_is_longest_row() {
        let ell = EllMatrix::from_coo(&figure1()).unwrap();
        assert_eq!(ell.width(), 3); // row 2 has 3 entries
        assert_eq!(ell.nnz(), 9);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = figure1();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        assert_eq!(ell.to_coo(), coo);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = figure1();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ell.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn fill_ratio_penalises_skew() {
        // Uniform rows: perfect fill.
        let t: Vec<_> = (0..8)
            .flat_map(|i| [(i, i, 1.0), (i, (i + 1) % 8, 2.0)])
            .collect();
        let coo = CooMatrix::from_triplets(8, 8, &t).unwrap();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        assert_eq!(ell.fill_ratio(), 1.0);
        // One dense row of 8 forces width 8 for everyone.
        let mut t: Vec<_> = (1..8).map(|i| (i, i, 1.0)).collect();
        t.extend((0..8).map(|j| (0, j, 1.0)));
        let coo = CooMatrix::from_triplets(8, 8, &t).unwrap();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        assert_eq!(ell.width(), 8);
        assert!(ell.fill_ratio() < 0.25);
    }

    #[test]
    fn width_limit_enforced() {
        let t: Vec<_> = (0..32).map(|j| (0, j, 1.0)).collect();
        let coo = CooMatrix::from_triplets(4, 32, &t).unwrap();
        let e = EllMatrix::from_coo_with_limit(&coo, 16).unwrap_err();
        assert!(matches!(
            e,
            SparseError::RowTooWide {
                width: 32,
                limit: 16
            }
        ));
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let coo = CooMatrix::<f64>::empty(3, 3).unwrap();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.spmv_alloc(&[1.0; 3]), vec![0.0; 3]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 2048;
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..9usize {
                t.push((i, (i + k * 5) % n, (k as f64) - 4.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let ell = EllMatrix::from_coo(&coo).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        ell.spmv(&x, &mut y1);
        ell.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }
}
