//! Coordinate (COO) format — the canonical exchange representation.
//!
//! Entries are kept sorted by `(row, col)` with no duplicates; all other
//! formats convert from/to this type. The parallel SpMV partitions the
//! entry array into contiguous chunks whose boundaries are snapped to row
//! boundaries, so each output element is owned by exactly one thread and
//! no atomic accumulation is needed (this mirrors what a real COO kernel
//! would do with atomics, minus the contention).

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sparse matrix in sorted, deduplicated coordinate form.
///
/// Indices are stored as `u32` to halve index traffic (matrices above
/// 2^32 rows/cols are rejected at construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<S>,
}

impl<S: Scalar> CooMatrix<S> {
    /// Creates an empty matrix of the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Result<Self, SparseError> {
        Self::check_shape(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        })
    }

    fn check_shape(nrows: usize, ncols: usize) -> Result<(), SparseError> {
        if nrows == 0 || ncols == 0 {
            return Err(SparseError::EmptyDimension { nrows, ncols });
        }
        if nrows > u32::MAX as usize || ncols > u32::MAX as usize {
            return Err(SparseError::InvalidStructure(
                "dimensions above u32::MAX are not supported".into(),
            ));
        }
        Ok(())
    }

    /// Builds a matrix from unsorted triplets; duplicates are summed.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, S)],
    ) -> Result<Self, SparseError> {
        let mut b = CooBuilder::new(nrows, ncols)?;
        for &(r, c, v) in triplets {
            b.push(r, c, v)?;
        }
        Ok(b.build())
    }

    /// Builds directly from parts that are already sorted and unique.
    ///
    /// This is the fast path used by format conversions; the invariants
    /// are checked (O(nnz)) so a broken conversion cannot produce a
    /// silently corrupt canonical matrix.
    pub fn from_sorted_parts(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<S>,
    ) -> Result<Self, SparseError> {
        Self::check_shape(nrows, ncols)?;
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(
                "rows/cols/vals length mismatch".into(),
            ));
        }
        for i in 0..rows.len() {
            let (r, c) = (rows[i] as usize, cols[i] as usize);
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            if i > 0 && (rows[i - 1], cols[i - 1]) >= (rows[i], cols[i]) {
                return Err(SparseError::InvalidStructure(format!(
                    "entries not strictly sorted at position {i}"
                )));
            }
        }
        Ok(Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row indices, sorted, one per entry.
    #[inline]
    pub fn row_indices(&self) -> &[u32] {
        &self.rows
    }

    /// Column indices, one per entry.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.cols
    }

    /// Entry values, one per entry.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.vals
    }

    /// Iterates `(row, col, value)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        (0..self.nnz()).map(move |i| (self.rows[i] as usize, self.cols[i] as usize, self.vals[i]))
    }

    /// Value at `(row, col)`, or zero if not stored. O(log nnz).
    pub fn get(&self, row: usize, col: usize) -> S {
        let key = (row as u32, col as u32);
        let mut lo = self.rows.partition_point(|&r| r < key.0);
        let hi = self.rows.partition_point(|&r| r <= key.0);
        lo += self.cols[lo..hi].partition_point(|&c| c < key.1);
        if lo < hi && self.cols[lo] == key.1 {
            self.vals[lo]
        } else {
            S::ZERO
        }
    }

    /// Transposed copy (entries re-sorted for the new orientation).
    pub fn transpose(&self) -> Self {
        let mut b = CooBuilder::new(self.ncols, self.nrows).expect("shape already validated");
        for (r, c, v) in self.iter() {
            b.push(c, r, v).expect("indices already validated");
        }
        b.build()
    }

    /// Sub-matrix covering `rows0..rows1` x `cols0..cols1` (half-open).
    ///
    /// Used by the dataset augmentation ("cropping" in the paper).
    pub fn crop(
        &self,
        rows0: usize,
        rows1: usize,
        cols0: usize,
        cols1: usize,
    ) -> Result<Self, SparseError> {
        if rows0 >= rows1 || cols0 >= cols1 || rows1 > self.nrows || cols1 > self.ncols {
            return Err(SparseError::InvalidStructure(format!(
                "invalid crop window [{rows0}, {rows1}) x [{cols0}, {cols1})"
            )));
        }
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (r, c, v) in self.iter() {
            if r >= rows0 && r < rows1 && c >= cols0 && c < cols1 {
                rows.push((r - rows0) as u32);
                cols.push((c - cols0) as u32);
                vals.push(v);
            }
        }
        Ok(Self {
            nrows: rows1 - rows0,
            ncols: cols1 - cols0,
            rows,
            cols,
            vals,
        })
    }

    /// Dense `nrows x ncols` copy in row-major order. For tests and tiny
    /// matrices only; allocation is `nrows * ncols` elements.
    pub fn to_dense(&self) -> Vec<S> {
        let mut d = vec![S::ZERO; self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            d[r * self.ncols + c] = v;
        }
        d
    }

    /// Offsets `i` such that entries of row `r` live at
    /// `offsets[r]..offsets[r+1]` — a CSR-style row pointer derived from
    /// the sort order. O(nrows + nnz).
    pub fn row_offsets(&self) -> Vec<usize> {
        let mut ptr = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            ptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            ptr[i + 1] += ptr[i];
        }
        ptr
    }

    /// Checks all structural invariants; used by tests and after
    /// deserialisation of untrusted data.
    pub fn validate(&self) -> Result<(), SparseError> {
        Self::check_shape(self.nrows, self.ncols)?;
        let cloned = Self::from_sorted_parts(
            self.nrows,
            self.ncols,
            self.rows.clone(),
            self.cols.clone(),
            self.vals.clone(),
        )?;
        debug_assert_eq!(&cloned, self);
        Ok(())
    }
}

impl<S: Scalar> Spmv<S> for CooMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        y.fill(S::ZERO);
        for i in 0..self.vals.len() {
            y[self.rows[i] as usize] += self.vals[i] * x[self.cols[i] as usize];
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        let nnz = self.vals.len();
        if nnz < 1 << 14 {
            // Parallel setup costs more than the work for small matrices.
            self.spmv(x, y);
            return;
        }
        // Split the entry array into chunks snapped to row boundaries so
        // each thread owns a disjoint slice of y.
        let nchunks = rayon::current_num_threads().max(1) * 4;
        let mut bounds = Vec::with_capacity(nchunks + 1);
        bounds.push(0usize);
        for k in 1..nchunks {
            let target = k * nnz / nchunks;
            // Snap forward to the first entry of the next row.
            let row = self.rows[target.min(nnz - 1)];
            let snapped = self.rows.partition_point(|&r| r <= row);
            if snapped > *bounds.last().expect("bounds is non-empty") && snapped < nnz {
                bounds.push(snapped);
            }
        }
        bounds.push(nnz);

        // Row ranges covered by each chunk are disjoint, so y can be
        // split into matching disjoint slices.
        y.fill(S::ZERO);
        let mut tasks: Vec<(usize, usize, &mut [S])> = Vec::with_capacity(bounds.len() - 1);
        let mut rest = y;
        let mut consumed = 0usize;
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo == hi {
                continue;
            }
            let row_lo = self.rows[lo] as usize;
            let row_hi = self.rows[hi - 1] as usize + 1;
            let (_, tail) = rest.split_at_mut(row_lo - consumed);
            let (mine, tail) = tail.split_at_mut(row_hi - row_lo);
            rest = tail;
            consumed = row_hi;
            tasks.push((lo, hi, mine));
        }
        tasks.into_par_iter().for_each(|(lo, hi, yslice)| {
            let row0 = self.rows[lo] as usize;
            for i in lo..hi {
                yslice[self.rows[i] as usize - row0] += self.vals[i] * x[self.cols[i] as usize];
            }
        });
    }
}

/// Incremental COO constructor accepting unsorted, duplicated input.
///
/// Duplicated coordinates are accumulated (summed), matching MatrixMarket
/// semantics for repeated entries.
#[derive(Debug, Clone)]
pub struct CooBuilder<S: Scalar> {
    nrows: usize,
    ncols: usize,
    triplets: Vec<(u32, u32, S)>,
}

impl<S: Scalar> CooBuilder<S> {
    /// Starts a builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Result<Self, SparseError> {
        CooMatrix::<S>::check_shape(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            triplets: Vec::new(),
        })
    }

    /// Reserves capacity for `n` more entries.
    pub fn reserve(&mut self, n: usize) {
        self.triplets.reserve(n);
    }

    /// Adds one entry; entries at the same coordinate are later summed.
    pub fn push(&mut self, row: usize, col: usize, val: S) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.triplets.push((row as u32, col as u32, val));
        Ok(())
    }

    /// Number of raw (pre-deduplication) entries pushed so far.
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Sorts, merges duplicates, drops explicit zeros, and finishes.
    pub fn build(mut self) -> CooMatrix<S> {
        self.triplets
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut rows = Vec::with_capacity(self.triplets.len());
        let mut cols = Vec::with_capacity(self.triplets.len());
        let mut vals: Vec<S> = Vec::with_capacity(self.triplets.len());
        for (r, c, v) in self.triplets {
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    let last = vals.last_mut().expect("vals parallel to rows");
                    *last += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        // Drop entries that summed to exactly zero to keep nnz meaningful.
        let mut w = 0;
        for i in 0..vals.len() {
            if vals[i] != S::ZERO {
                rows[w] = rows[i];
                cols[w] = cols[i];
                vals[w] = vals[i];
                w += 1;
            }
        }
        rows.truncate(w);
        cols.truncate(w);
        vals.truncate(w);
        CooMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rows,
            cols,
            vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<f64> {
        // Matrix from Figure 1 of the paper.
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_and_counts() {
        let m = CooMatrix::from_triplets(3, 3, &[(2, 2, 1.0), (0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_indices(), &[0, 1, 2]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn entries_cancelling_to_zero_are_dropped() {
        let m = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let e = CooMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            CooMatrix::<f64>::empty(0, 3),
            Err(SparseError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(3, 0), 0.0);
    }

    #[test]
    fn spmv_matches_figure_1() {
        let m = sample();
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = [0.0; 4];
        m.spmv(&x, &mut y);
        assert_eq!(y, [6.0, 8.0, 18.0, 13.0]);
    }

    #[test]
    fn spmv_par_matches_sequential() {
        let m = sample();
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        m.spmv(&x, &mut y1);
        m.spmv_par(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_par_large_matches_sequential() {
        // Exceeds the parallel-dispatch threshold with skewed row sizes.
        let n = 512;
        let mut t = Vec::new();
        for i in 0..n {
            for j in 0..(1 + (i * 37) % 64) {
                t.push((i, (i + j * 7) % n, (i + j) as f64 * 0.01 + 1.0));
            }
        }
        // Make one huge row to stress boundary snapping.
        for j in 0..n {
            t.push((200, j, 0.5));
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        assert!(m.nnz() > 1 << 14);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.spmv(&x, &mut y1);
        m.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn transpose_flips_coordinates() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.get(1, 0), 5.0);
        assert_eq!(t.get(0, 2), 8.0);
        // Double transpose is identity.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn crop_extracts_window() {
        let m = sample();
        let c = m.crop(1, 3, 1, 4).unwrap();
        assert_eq!((c.nrows(), c.ncols()), (2, 3));
        assert_eq!(c.get(0, 0), 2.0); // was (1,1)
        assert_eq!(c.get(1, 2), 7.0); // was (2,3)
    }

    #[test]
    fn crop_rejects_bad_window() {
        let m = sample();
        assert!(m.crop(2, 2, 0, 4).is_err());
        assert!(m.crop(0, 5, 0, 4).is_err());
    }

    #[test]
    fn row_offsets_match_rows() {
        let m = sample();
        assert_eq!(m.row_offsets(), vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[0], 1.0);
        assert_eq!(d[2 * 4 + 3], 7.0);
        assert_eq!(d.iter().filter(|&&v| v != 0.0).count(), m.nnz());
    }

    #[test]
    fn from_sorted_parts_rejects_unsorted() {
        let e = CooMatrix::from_sorted_parts(2, 2, vec![1, 0], vec![0, 0], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn validate_accepts_built_matrix() {
        sample().validate().unwrap();
    }
}
