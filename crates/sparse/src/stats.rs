//! Single-pass structural statistics of a sparse matrix.
//!
//! These drive both the analytic platform cost models (which formats
//! pay for padding, imbalance, and irregularity) and the SMAT-style
//! feature vector of the decision-tree baseline.

use crate::coo::CooMatrix;
use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};

/// Block edge used for the BSR-related statistics (matches
/// [`crate::bsr::DEFAULT_BLOCK_SIZE`]).
const STAT_BLOCK: usize = 4;

/// Structural summary of a sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// `nnz / (nrows * ncols)`.
    pub density: f64,
    /// Shortest row (in nonzeros).
    pub row_min: usize,
    /// Longest row (in nonzeros).
    pub row_max: usize,
    /// Mean nonzeros per row.
    pub row_mean: f64,
    /// Standard deviation of nonzeros per row.
    pub row_std: f64,
    /// Coefficient of variation of row lengths (`row_std / row_mean`,
    /// 0 for empty matrices). The canonical "ELL will hate this" signal.
    pub row_cv: f64,
    /// Rows with no nonzeros at all.
    pub empty_rows: usize,
    /// Number of distinct occupied diagonals.
    pub ndiags: usize,
    /// `nnz / (ndiags * nrows)` — DIA lane utilisation.
    pub dia_fill: f64,
    /// `nnz / (nrows * row_max)` — ELL slot utilisation.
    pub ell_fill: f64,
    /// Number of occupied 4x4 blocks.
    pub nblocks: usize,
    /// `nnz / (nblocks * 16)` — BSR payload utilisation.
    pub bsr_fill: f64,
    /// Maximum |col - row| over all entries (0 for empty matrices).
    pub bandwidth: usize,
    /// Mean |col - row| over all entries.
    pub mean_diag_distance: f64,
    /// Fraction of nonzeros lying exactly on the main diagonal.
    pub main_diag_fraction: f64,
}

impl MatrixStats {
    /// Computes all statistics. O(nnz log nnz) time (block dedup),
    /// O(nrows + ncols + nnz) memory.
    pub fn compute<S: Scalar>(coo: &CooMatrix<S>) -> Self {
        let (nrows, ncols, nnz) = (coo.nrows(), coo.ncols(), coo.nnz());
        let ptr = coo.row_offsets();
        let mut row_min = usize::MAX;
        let mut row_max = 0usize;
        let mut empty_rows = 0usize;
        let mut sum = 0usize;
        let mut sumsq = 0f64;
        for r in 0..nrows {
            let len = ptr[r + 1] - ptr[r];
            row_min = row_min.min(len);
            row_max = row_max.max(len);
            if len == 0 {
                empty_rows += 1;
            }
            sum += len;
            sumsq += (len * len) as f64;
        }
        if nrows == 0 {
            row_min = 0;
        }
        let row_mean = sum as f64 / nrows as f64;
        let var = (sumsq / nrows as f64 - row_mean * row_mean).max(0.0);
        let row_std = var.sqrt();
        let row_cv = if row_mean > 0.0 {
            row_std / row_mean
        } else {
            0.0
        };

        // Diagonal occupancy via a dense offset table (offset range is
        // -(nrows-1) ..= (ncols-1)).
        let mut diag_seen = vec![false; nrows + ncols - 1];
        let mut bandwidth = 0usize;
        let mut dist_sum = 0f64;
        let mut on_main = 0usize;
        for (r, c, _) in coo.iter() {
            let off = c as i64 - r as i64;
            diag_seen[(off + nrows as i64 - 1) as usize] = true;
            let dist = off.unsigned_abs() as usize;
            bandwidth = bandwidth.max(dist);
            dist_sum += dist as f64;
            if off == 0 {
                on_main += 1;
            }
        }
        let ndiags = diag_seen.iter().filter(|&&b| b).count();

        // Occupied 4x4 blocks: dedup sorted (block_row, block_col) keys.
        let mut block_keys: Vec<u64> = coo
            .iter()
            .map(|(r, c, _)| (((r / STAT_BLOCK) as u64) << 32) | (c / STAT_BLOCK) as u64)
            .collect();
        block_keys.sort_unstable();
        block_keys.dedup();
        let nblocks = block_keys.len();

        let nnzf = nnz as f64;
        Self {
            nrows,
            ncols,
            nnz,
            density: nnzf / (nrows as f64 * ncols as f64),
            row_min,
            row_max,
            row_mean,
            row_std,
            row_cv,
            empty_rows,
            ndiags,
            dia_fill: if ndiags > 0 {
                nnzf / (ndiags as f64 * nrows as f64)
            } else {
                0.0
            },
            ell_fill: if row_max > 0 {
                nnzf / (nrows as f64 * row_max as f64)
            } else {
                0.0
            },
            nblocks,
            bsr_fill: if nblocks > 0 {
                nnzf / (nblocks as f64 * (STAT_BLOCK * STAT_BLOCK) as f64)
            } else {
                0.0
            },
            bandwidth,
            mean_diag_distance: if nnz > 0 { dist_sum / nnzf } else { 0.0 },
            main_diag_fraction: if nnz > 0 { on_main as f64 / nnzf } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiagonal_stats() {
        let n = 64;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.ndiags, 3);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.row_max, 3);
        assert_eq!(s.row_min, 2);
        assert_eq!(s.empty_rows, 0);
        assert!(s.dia_fill > 0.98);
        assert!(s.main_diag_fraction > 0.3);
        // Row lengths nearly uniform -> tiny CV.
        assert!(s.row_cv < 0.1, "cv = {}", s.row_cv);
    }

    #[test]
    fn skewed_rows_have_high_cv() {
        let mut t: Vec<_> = (1..64).map(|i| (i, i, 1.0)).collect();
        t.extend((0..64).map(|j| (0usize, j, 1.0)));
        let coo = CooMatrix::from_triplets(64, 64, &t).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.row_max, 64);
        assert!(s.row_cv > 2.0);
        assert!(s.ell_fill < 0.05);
    }

    #[test]
    fn dense_block_matrix_has_high_bsr_fill() {
        let mut t = Vec::new();
        for b in 0..8usize {
            for i in 0..4 {
                for j in 0..4 {
                    t.push((b * 4 + i, b * 4 + j, 1.0));
                }
            }
        }
        let coo = CooMatrix::from_triplets(32, 32, &t).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.nblocks, 8);
        assert_eq!(s.bsr_fill, 1.0);
    }

    #[test]
    fn scattered_matrix_has_low_fills() {
        // Anti-diagonal: worst case for DIA.
        let n = 32;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.ndiags, n);
        assert!(s.dia_fill < 0.05);
        assert_eq!(s.bandwidth, n - 1);
        assert_eq!(s.main_diag_fraction, 0.0);
    }

    #[test]
    fn empty_rows_counted() {
        let coo = CooMatrix::from_triplets(10, 10, &[(0, 0, 1.0), (9, 9, 1.0)]).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.empty_rows, 8);
        assert_eq!(s.row_min, 0);
        assert_eq!(s.row_max, 1);
    }

    #[test]
    fn empty_matrix_is_all_zeros_not_nan() {
        let coo = CooMatrix::<f64>::empty(5, 5).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.ndiags, 0);
        assert_eq!(s.dia_fill, 0.0);
        assert_eq!(s.ell_fill, 0.0);
        assert_eq!(s.bsr_fill, 0.0);
        assert_eq!(s.row_cv, 0.0);
        assert!(!s.mean_diag_distance.is_nan());
    }

    #[test]
    fn rectangular_matrix_diag_table_is_large_enough() {
        // Entry in the extreme corners exercises the offset table bounds.
        let coo = CooMatrix::from_triplets(3, 7, &[(2, 0, 1.0), (0, 6, 1.0)]).unwrap();
        let s = MatrixStats::compute(&coo);
        assert_eq!(s.ndiags, 2);
        assert_eq!(s.bandwidth, 6);
    }
}
