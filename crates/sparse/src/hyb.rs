//! HYB (hybrid ELL + COO) format, after Bell & Garland's cuSPARSE design.
//!
//! The "typical" number of nonzeros per row goes into a regular ELL
//! section; the overflow from unusually long rows spills into a small
//! COO tail. This keeps ELL's coalescing-friendly regularity without
//! paying its worst-case padding, which is why HYB wins on matrices with
//! a mostly-uniform row-length distribution plus a few heavy rows.

use crate::coo::{CooBuilder, CooMatrix};
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sparse matrix in hybrid ELL + COO form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// ELL section width (first `ell_width` entries of each row).
    ell_width: usize,
    ell_cols: Vec<u32>,
    ell_vals: Vec<S>,
    /// COO tail, sorted by (row, col).
    coo_rows: Vec<u32>,
    coo_cols: Vec<u32>,
    coo_vals: Vec<S>,
}

impl<S: Scalar> HybMatrix<S> {
    /// Converts from COO, choosing the ELL width that minimises total
    /// storage bytes (the classic HYB auto-tuning heuristic).
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        let ptr = coo.row_offsets();
        let max_len = (0..coo.nrows())
            .map(|r| ptr[r + 1] - ptr[r])
            .max()
            .unwrap_or(0);
        // Histogram of row lengths -> rows_with_len_at_least.
        let mut hist = vec![0usize; max_len + 2];
        for r in 0..coo.nrows() {
            hist[ptr[r + 1] - ptr[r]] += 1;
        }
        let mut at_least = vec![0usize; max_len + 2];
        for len in (0..=max_len).rev() {
            at_least[len] = at_least[len + 1] + hist[len];
        }
        // ELL slots hold 4-byte col + value; COO tail entries hold two
        // 4-byte indices + value.
        let ell_cost = (4 + S::BYTES) as f64;
        let coo_cost = (8 + S::BYTES) as f64;
        let mut best_k = 0usize;
        let mut best = f64::INFINITY;
        for k in 0..=max_len {
            // Entries covered by an ELL of width k.
            let covered: usize = (1..=k).map(|len| at_least[len]).sum();
            let overflow = coo.nnz() - covered;
            let cost = (coo.nrows() * k) as f64 * ell_cost + overflow as f64 * coo_cost;
            if cost < best {
                best = cost;
                best_k = k;
            }
        }
        Self::from_coo_with_width(coo, best_k)
    }

    /// Converts from COO with an explicit ELL section width.
    pub fn from_coo_with_width(coo: &CooMatrix<S>, ell_width: usize) -> Self {
        let ptr = coo.row_offsets();
        let nrows = coo.nrows();
        let ccols = coo.col_indices();
        let cvals = coo.values();
        let mut ell_cols = vec![0u32; nrows * ell_width];
        let mut ell_vals = vec![S::ZERO; nrows * ell_width];
        let mut coo_rows = Vec::new();
        let mut coo_cols = Vec::new();
        let mut coo_vals = Vec::new();
        for r in 0..nrows {
            for (k, i) in (ptr[r]..ptr[r + 1]).enumerate() {
                if k < ell_width {
                    ell_cols[r * ell_width + k] = ccols[i];
                    ell_vals[r * ell_width + k] = cvals[i];
                } else {
                    coo_rows.push(r as u32);
                    coo_cols.push(ccols[i]);
                    coo_vals.push(cvals[i]);
                }
            }
        }
        Self {
            nrows,
            ncols: coo.ncols(),
            nnz: coo.nnz(),
            ell_width,
            ell_cols,
            ell_vals,
            coo_rows,
            coo_cols,
            coo_vals,
        }
    }

    /// Converts back to canonical COO.
    pub fn to_coo(&self) -> Result<CooMatrix<S>, SparseError> {
        let mut b = CooBuilder::new(self.nrows, self.ncols)?;
        b.reserve(self.nnz);
        for r in 0..self.nrows {
            for k in 0..self.ell_width {
                let v = self.ell_vals[r * self.ell_width + k];
                if v != S::ZERO {
                    b.push(r, self.ell_cols[r * self.ell_width + k] as usize, v)?;
                }
            }
        }
        for i in 0..self.coo_vals.len() {
            b.push(
                self.coo_rows[i] as usize,
                self.coo_cols[i] as usize,
                self.coo_vals[i],
            )?;
        }
        Ok(b.build())
    }

    /// Width of the regular ELL section.
    #[inline]
    pub fn ell_width(&self) -> usize {
        self.ell_width
    }

    /// Entries spilled to the COO tail.
    #[inline]
    pub fn coo_nnz(&self) -> usize {
        self.coo_vals.len()
    }

    /// Total logically stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Bytes occupied by both sections.
    pub fn storage_bytes(&self) -> usize {
        self.ell_cols.len() * 4
            + self.ell_vals.len() * S::BYTES
            + self.coo_rows.len() * 4
            + self.coo_cols.len() * 4
            + self.coo_vals.len() * S::BYTES
    }
}

impl<S: Scalar> Spmv<S> for HybMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            let base = r * self.ell_width;
            let mut acc = S::ZERO;
            for k in 0..self.ell_width {
                acc += self.ell_vals[base + k] * x[self.ell_cols[base + k] as usize];
            }
            *out = acc;
        }
        for i in 0..self.coo_vals.len() {
            y[self.coo_rows[i] as usize] += self.coo_vals[i] * x[self.coo_cols[i] as usize];
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.ell_vals.len() + self.coo_vals.len() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        // Parallel ELL pass; the COO tail is by construction small, so a
        // sequential fix-up pass costs little and avoids write conflicts.
        let chunk = crate::spmv::par_chunk_rows(self.nrows, 4);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, ys)| {
            let rbase = ci * chunk;
            for (i, out) in ys.iter_mut().enumerate() {
                let base = (rbase + i) * self.ell_width;
                let mut acc = S::ZERO;
                for k in 0..self.ell_width {
                    acc += self.ell_vals[base + k] * x[self.ell_cols[base + k] as usize];
                }
                *out = acc;
            }
        });
        for i in 0..self.coo_vals.len() {
            y[self.coo_rows[i] as usize] += self.coo_vals[i] * x[self.coo_cols[i] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> CooMatrix<f64> {
        // 7 rows with 2 entries, one row with 8 entries.
        let mut t: Vec<_> = (1..8)
            .flat_map(|i| [(i, i, i as f64), (i, (i + 3) % 8, 1.0)])
            .collect();
        t.extend((0..8).map(|j| (0usize, j, 0.5)));
        CooMatrix::from_triplets(8, 8, &t).unwrap()
    }

    #[test]
    fn auto_width_splits_heavy_row() {
        let hyb = HybMatrix::from_coo(&skewed());
        // Storage-minimising width should be the common row length (2),
        // spilling the heavy row's remaining 6 entries.
        assert_eq!(hyb.ell_width(), 2);
        assert_eq!(hyb.coo_nnz(), 6);
        assert_eq!(hyb.nnz(), 22);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = skewed();
        let hyb = HybMatrix::from_coo(&coo);
        assert_eq!(hyb.to_coo().unwrap(), coo);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = skewed();
        let hyb = HybMatrix::from_coo(&coo);
        let x = [1.0, -1.0, 2.0, 0.0, 3.0, 1.0, -2.0, 0.5];
        let y1 = hyb.spmv_alloc(&x);
        let y2 = coo.spmv_alloc(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn explicit_width_zero_is_pure_coo() {
        let coo = skewed();
        let hyb = HybMatrix::from_coo_with_width(&coo, 0);
        assert_eq!(hyb.coo_nnz(), coo.nnz());
        assert_eq!(hyb.to_coo().unwrap(), coo);
    }

    #[test]
    fn explicit_width_max_is_pure_ell() {
        let coo = skewed();
        let hyb = HybMatrix::from_coo_with_width(&coo, 8);
        assert_eq!(hyb.coo_nnz(), 0);
        assert_eq!(hyb.to_coo().unwrap(), coo);
    }

    #[test]
    fn uniform_rows_get_full_ell() {
        let t: Vec<_> = (0..16)
            .flat_map(|i| [(i, i, 1.0), (i, (i + 1) % 16, 2.0), (i, (i + 5) % 16, 3.0)])
            .collect();
        let coo = CooMatrix::from_triplets(16, 16, &t).unwrap();
        let hyb = HybMatrix::from_coo(&coo);
        assert_eq!(hyb.ell_width(), 3);
        assert_eq!(hyb.coo_nnz(), 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 1500;
        let mut t = Vec::new();
        for i in 0..n {
            let len = if i % 100 == 0 { 60 } else { 8 };
            for k in 0..len {
                t.push((i, (i * 13 + k * 7) % n, (k as f64) * 0.1 - 1.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let hyb = HybMatrix::from_coo(&coo);
        assert!(hyb.coo_nnz() > 0);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        hyb.spmv(&x, &mut y1);
        hyb.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }
}
