//! Merge-based CSR SpMV (Merrill & Garland, SC'16).
//!
//! Storage is plain CSR; the parallel kernel is what changes. Row-chunked
//! CSR hands each worker an equal number of *rows*, so one heavy row
//! serializes the whole sweep on power-law matrices. Merge-based CSR
//! instead treats SpMV as merging two lists — the row descriptors
//! (`row_ptr[1..]`) and the nonzero indices (`0..nnz`) — and splits the
//! *merge path* into equal pieces: every worker gets exactly
//! `(nrows + nnz) / P` units of work no matter how the nonzeros are
//! distributed over rows. Partition boundaries land mid-row, so each
//! worker returns a carry-out partial for its trailing row, fixed up
//! sequentially afterwards (`P - 1` additions).
//!
//! The partition search for diagonal `d` finds the split `(r, i)` with
//! `r + i = d` such that rows `< r` are fully consumed by nonzeros
//! `< i` — a binary search over `row_ptr`, O(log nrows) per worker.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Partitions per worker thread. Oversubscription lets rayon's work
/// stealing smooth out scheduling noise without inflating the O(P)
/// carry fixup.
pub const PARTITIONS_PER_THREAD: usize = 4;

/// Sparse matrix in CSR layout with a merge-path-partitioned parallel
/// SpMV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeCsrMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<S>,
}

impl<S: Scalar> MergeCsrMatrix<S> {
    /// Converts from COO. Never fails: the layout is plain CSR.
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            row_ptr: coo.row_offsets(),
            cols: coo.col_indices().to_vec(),
            vals: coo.values().to_vec(),
        }
    }

    /// Converts back to canonical COO.
    ///
    /// Fallible because a `MergeCsrMatrix` can arrive through
    /// deserialization: a hostile payload may carry a malformed
    /// `row_ptr` or out-of-range column indices, which must surface as
    /// a typed error instead of an indexing panic.
    pub fn to_coo(&self) -> Result<CooMatrix<S>, SparseError> {
        self.validate()?;
        let mut b = crate::coo::CooBuilder::new(self.nrows, self.ncols)?;
        b.reserve(self.vals.len());
        for r in 0..self.nrows {
            for j in self.row_ptr[r]..self.row_ptr[r + 1] {
                b.push(r, self.cols[j] as usize, self.vals[j])?;
            }
        }
        Ok(b.build())
    }

    /// Checks every structural invariant a hostile `Deserialize`
    /// payload could violate. A matrix that passes cannot make
    /// [`Self::to_coo`] or the SpMV kernels index out of bounds.
    pub fn validate(&self) -> Result<(), SparseError> {
        let bad = |m: String| SparseError::InvalidStructure(m);
        if self.row_ptr.len() != self.nrows + 1 || self.row_ptr[0] != 0 {
            return Err(bad(format!(
                "row_ptr must hold {} offsets starting at 0, got {}",
                self.nrows + 1,
                self.row_ptr.len()
            )));
        }
        for r in 0..self.nrows {
            if self.row_ptr[r + 1] < self.row_ptr[r] {
                return Err(bad(format!(
                    "row_ptr[{r}..={}] = [{}, {}] is not monotone",
                    r + 1,
                    self.row_ptr[r],
                    self.row_ptr[r + 1]
                )));
            }
        }
        let declared = *self.row_ptr.last().expect("length checked above");
        if self.cols.len() != declared || self.vals.len() != declared {
            return Err(bad(format!(
                "row_ptr declares {declared} nonzeros but cols/vals hold {}/{}",
                self.cols.len(),
                self.vals.len()
            )));
        }
        for r in 0..self.nrows {
            for j in self.row_ptr[r]..self.row_ptr[r + 1] {
                let col = self.cols[j] as usize;
                if col >= self.ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Bytes occupied by the CSR arrays.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.cols.len() * 4 + self.vals.len() * S::BYTES
    }

    /// Finds the merge-path split `(rows_consumed, nnz_consumed)` on
    /// `diagonal` (`0..=nrows+nnz`). Row-end `r` (value `row_ptr[r+1]`)
    /// is consumed before nonzero `i` iff `row_ptr[r+1] <= i`, which
    /// makes empty rows zero-cost and keeps every split unique.
    fn merge_path_search(&self, diagonal: usize) -> (usize, usize) {
        let nnz = self.vals.len();
        let mut lo = diagonal.saturating_sub(nnz);
        let mut hi = diagonal.min(self.nrows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row_ptr[mid + 1] < diagonal - mid {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo, diagonal - lo)
    }

    /// Equal-work partition boundaries for `parts` workers: `parts + 1`
    /// `(row, nnz_index)` splits along the merge path. Exposed so
    /// benchmarks and tests can inspect (and time) individual shares.
    pub fn partition_points(&self, parts: usize) -> Vec<(usize, usize)> {
        let parts = parts.max(1);
        let total = self.nrows + self.vals.len();
        (0..=parts)
            .map(|p| self.merge_path_search(total * p / parts))
            .collect()
    }

    /// Runs one partition's share: rows `lo.0..hi.0` are accumulated
    /// into `out` (which must span exactly those rows and is fully
    /// overwritten), and nonzeros belonging to the straddled trailing
    /// row `hi.0` are returned as a carry-out `(row, partial)`.
    ///
    /// Public so `bench_spmv` can measure per-share cost directly.
    pub fn partition_spmv(
        &self,
        lo: (usize, usize),
        hi: (usize, usize),
        x: &[S],
        out: &mut [S],
    ) -> Option<(usize, S)> {
        let (r0, i0) = lo;
        let (r1, i1) = hi;
        debug_assert_eq!(out.len(), r1 - r0);
        for (r, slot) in (r0..r1).zip(out.iter_mut()) {
            let mut acc = S::ZERO;
            // `max(i0)` matters only for the first row, whose leading
            // nonzeros belong to earlier partitions' carries.
            for j in self.row_ptr[r].max(i0)..self.row_ptr[r + 1] {
                acc += self.vals[j] * x[self.cols[j] as usize];
            }
            *slot = acc;
        }
        // Trailing straddled row: its share here is [row_ptr[r1], i1)
        // (clamped by i0 when a mega-row spans this whole partition).
        let t0 = if r1 < self.nrows {
            self.row_ptr[r1].max(i0)
        } else {
            i1
        };
        if t0 < i1 {
            let mut acc = S::ZERO;
            for j in t0..i1 {
                acc += self.vals[j] * x[self.cols[j] as usize];
            }
            Some((r1, acc))
        } else {
            None
        }
    }

    /// Parallel SpMV over explicit merge-path partitions. `y` is split
    /// at the partition row boundaries so every worker owns a disjoint
    /// slice; carries are applied sequentially afterwards.
    pub fn spmv_partitioned(&self, x: &[S], y: &mut [S], parts: usize) {
        let bounds = self.partition_points(parts);
        let parts = bounds.len() - 1;
        let mut slices = Vec::with_capacity(parts);
        let mut rest = &mut *y;
        let mut prev = 0usize;
        for b in &bounds[1..] {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(b.0 - prev);
            slices.push(head);
            rest = tail;
            prev = b.0;
        }
        let carries: Vec<Option<(usize, S)>> = slices
            .into_par_iter()
            .enumerate()
            .map(|(w, out)| self.partition_spmv(bounds[w], bounds[w + 1], x, out))
            .collect();
        for (row, v) in carries.into_iter().flatten() {
            y[row] += v;
        }
    }
}

impl<S: Scalar> Spmv<S> for MergeCsrMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = S::ZERO;
            for j in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[j] * x[self.cols[j] as usize];
            }
            *out = acc;
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.vals.len() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        let parts = rayon::current_num_threads().max(1) * PARTITIONS_PER_THREAD;
        self.spmv_partitioned(x, y, parts);
    }
}

impl<S: Scalar> From<&CsrMatrix<S>> for MergeCsrMatrix<S> {
    /// Re-wraps existing CSR arrays under the merge-path kernel; the
    /// storage is identical, only the parallel schedule differs.
    fn from(csr: &CsrMatrix<S>) -> Self {
        Self {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            row_ptr: csr.row_ptr().to_vec(),
            cols: csr.col_indices().to_vec(),
            vals: csr.values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    /// Power-law-ish matrix: row r gets ~n/(r+1) entries.
    fn power_law(n: usize) -> CooMatrix<f64> {
        let mut t = Vec::new();
        for r in 0..n {
            let deg = (n / (r + 1)).clamp(1, n / 2);
            for k in 0..deg {
                t.push((r, (r + k * 3 + 1) % n, 1.0 + (k % 7) as f64));
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = figure1();
        assert_eq!(MergeCsrMatrix::from_coo(&coo).to_coo().unwrap(), coo);
    }

    /// Hostile deserialized shapes surface typed errors, never panics
    /// — the same audit PR 4 ran over the repr hot paths.
    #[test]
    fn hostile_shapes_are_rejected_with_typed_errors() {
        let good = MergeCsrMatrix::from_coo(&figure1());
        assert!(good.validate().is_ok());

        let mut torn_ptr = good.clone();
        torn_ptr.row_ptr = vec![];
        assert!(matches!(
            torn_ptr.to_coo(),
            Err(SparseError::InvalidStructure(_))
        ));

        let mut backwards = good.clone();
        backwards.row_ptr = vec![0, 5, 2, 7, 9];
        assert!(matches!(
            backwards.to_coo(),
            Err(SparseError::InvalidStructure(_))
        ));

        let mut overlong = good.clone();
        *overlong.row_ptr.last_mut().unwrap() = 100;
        assert!(overlong.to_coo().is_err());

        let mut oob_col = good.clone();
        oob_col.cols[0] = 1000;
        assert!(matches!(
            oob_col.to_coo(),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = figure1();
        let m = MergeCsrMatrix::from_coo(&coo);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn merge_path_search_walks_the_path() {
        // Rows of length [2, 1]: path consumes b0 b1 A0 b2 A1.
        let coo = CooMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0)]).unwrap();
        let m = MergeCsrMatrix::from_coo(&coo);
        let want = [(0, 0), (0, 1), (0, 2), (1, 2), (1, 3), (2, 3)];
        for (d, w) in want.iter().enumerate() {
            assert_eq!(m.merge_path_search(d), *w, "diagonal {d}");
        }
    }

    #[test]
    fn partitions_split_work_evenly() {
        let m = MergeCsrMatrix::from_coo(&power_law(1000));
        let total = m.nrows + m.nnz();
        for parts in [2, 3, 4, 7, 16] {
            let b = m.partition_points(parts);
            assert_eq!(b[0], (0, 0));
            assert_eq!(b[parts], (m.nrows, m.nnz()));
            for w in 0..parts {
                let share = (b[w + 1].0 - b[w].0) + (b[w + 1].1 - b[w].1);
                let ideal = total / parts;
                assert!(
                    share <= ideal + 1 && share + 1 >= ideal,
                    "parts={parts} worker={w} share={share} ideal={ideal}"
                );
            }
        }
    }

    #[test]
    fn partitioned_matches_sequential_on_any_part_count() {
        for coo in [figure1(), power_law(257)] {
            let m = MergeCsrMatrix::from_coo(&coo);
            let x: Vec<f64> = (0..coo.ncols()).map(|i| (i as f64 * 0.3).sin()).collect();
            let want = m.spmv_alloc(&x);
            for parts in [1, 2, 3, 5, 8, 32, 1000] {
                let mut y = vec![7.0; coo.nrows()];
                m.spmv_partitioned(&x, &mut y, parts);
                for (a, b) in y.iter().zip(&want) {
                    assert!(a.approx_eq(*b, 1e-10), "parts {parts}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn mega_row_spanning_many_partitions() {
        // One row holds everything: every partition but the first is a
        // pure carry into row 0... and empty rows trail behind it.
        let n = 64;
        let t: Vec<_> = (0..n).map(|j| (0, j, 1.0 + j as f64)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let m = MergeCsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let want = m.spmv_alloc(&x);
        for parts in [2, 4, 16] {
            let mut y = vec![0.0; n];
            m.spmv_partitioned(&x, &mut y, parts);
            for (a, b) in y.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn empty_rows_are_free_on_the_merge_path() {
        let coo = CooMatrix::from_triplets(6, 6, &[(3, 2, 2.0), (5, 5, 1.0)]).unwrap();
        let m = MergeCsrMatrix::from_coo(&coo);
        let x = [1.0; 6];
        let want = m.spmv_alloc(&x);
        for parts in [1, 2, 3, 8] {
            let mut y = vec![9.0; 6];
            m.spmv_partitioned(&x, &mut y, parts);
            assert_eq!(y, want, "parts {parts}");
        }
    }

    #[test]
    fn parallel_entry_point_matches_sequential() {
        let coo = power_law(3000);
        let m = MergeCsrMatrix::from_coo(&coo);
        assert!(m.nnz() >= 1 << 14);
        let x: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut y1 = vec![0.0; 3000];
        let mut y2 = vec![0.0; 3000];
        m.spmv(&x, &mut y1);
        m.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn from_csr_preserves_the_matrix() {
        let coo = figure1();
        let csr = CsrMatrix::from_coo(&coo);
        let m = MergeCsrMatrix::from(&csr);
        assert_eq!(m.to_coo().unwrap(), coo);
    }
}
