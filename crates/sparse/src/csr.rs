//! Compressed Sparse Row (CSR) — the default general-purpose format.
//!
//! CSR compresses COO's row array into `nrows + 1` offsets. Its SpMV
//! iterates rows and is trivially parallel over row chunks; this is the
//! baseline format ("default CSR" in the paper's speedup comparisons).

use crate::coo::CooMatrix;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sparse matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<S>,
}

impl<S: Scalar> CsrMatrix<S> {
    /// Converts from canonical COO. O(nrows + nnz).
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            row_ptr: coo.row_offsets(),
            cols: coo.col_indices().to_vec(),
            vals: coo.values().to_vec(),
        }
    }

    /// Converts back to canonical COO.
    pub fn to_coo(&self) -> CooMatrix<S> {
        let mut rows = Vec::with_capacity(self.vals.len());
        for r in 0..self.nrows {
            for _ in self.row_ptr[r]..self.row_ptr[r + 1] {
                rows.push(r as u32);
            }
        }
        CooMatrix::from_sorted_parts(
            self.nrows,
            self.ncols,
            rows,
            self.cols.clone(),
            self.vals.clone(),
        )
        .expect("CSR invariants imply valid COO")
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row pointer array of length `nrows + 1`.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.cols
    }

    /// Stored values.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.vals
    }

    /// Column indices and values of one row.
    pub fn row(&self, r: usize) -> (&[u32], &[S]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Bytes occupied by the index+value arrays (used by cost models).
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.vals.len() * S::BYTES
    }

    #[inline]
    fn row_dot(&self, r: usize, x: &[S]) -> S {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        let mut acc = S::ZERO;
        for i in lo..hi {
            acc += self.vals[i] * x[self.cols[i] as usize];
        }
        acc
    }
}

impl<S: Scalar> Spmv<S> for CsrMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            *out = self.row_dot(r, x);
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.nnz() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        // Chunk rows; rayon load-balances across chunks, which is enough
        // unless row lengths are pathologically skewed (that is exactly
        // the case where CSR loses to load-balanced formats like CSR5).
        let chunk = crate::spmv::par_chunk_rows(self.nrows, 8);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, ys)| {
            let base = ci * chunk;
            for (i, out) in ys.iter_mut().enumerate() {
                *out = self.row_dot(base + i, x);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_matches_figure_1_arrays() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        // Figure 1 of the paper: ptr = [0 2 4 7 (9)], cols as listed.
        assert_eq!(csr.row_ptr(), &[0, 2, 4, 7, 9]);
        assert_eq!(csr.col_indices(), &[0, 1, 1, 2, 0, 2, 3, 1, 3]);
        assert_eq!(csr.values(), &[1.0, 5.0, 2.0, 6.0, 8.0, 3.0, 7.0, 9.0, 4.0]);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(csr.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn empty_rows_are_handled() {
        let coo = CooMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.spmv_alloc(&[2.0, 0.0, 0.0]), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn row_accessor_returns_slices() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let (cols, vals) = csr.row(2);
        assert_eq!(cols, &[0, 2, 3]);
        assert_eq!(vals, &[8.0, 3.0, 7.0]);
    }

    #[test]
    fn parallel_matches_sequential_on_large_skewed_matrix() {
        let n = 1500;
        let mut t = Vec::new();
        for i in 0..n {
            let len = if i % 97 == 0 { 300 } else { 5 + i % 23 };
            for j in 0..len {
                t.push((i, (i * 31 + j * 17) % n, ((i + j) % 13) as f64 - 6.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert!(csr.nnz() > 1 << 14);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        csr.spmv(&x, &mut y1);
        csr.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn storage_bytes_is_positive_and_scales() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let b = csr.storage_bytes();
        assert!(b >= 9 * (4 + 8));
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let mut y = vec![0.0; 4];
        csr.spmv(&[1.0; 3], &mut y);
    }
}
