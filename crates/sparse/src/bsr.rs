//! Block Sparse Row (BSR) format — CSR over dense `b x b` blocks.
//!
//! BSR amortises index storage over whole blocks and turns the inner
//! kernel into a tiny dense matrix–vector product, which vectorises well
//! and (on GPUs) coalesces. It wins on matrices with genuine block
//! structure (FEM with multiple degrees of freedom per node) and loses
//! when blocks are mostly padding. The paper's GPU evaluation uses a
//! `4 x 4` block size; that is the default here.

use crate::coo::{CooBuilder, CooMatrix};
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Block edge length used by the paper's GPU experiments.
pub const DEFAULT_BLOCK_SIZE: usize = 4;

/// Maximum materialised payload elements per stored nonzero accepted by
/// [`BsrMatrix::from_coo`]. A matrix whose blocks are emptier than
/// `1/DEFAULT_MAX_EXPANSION` can never win with BSR — padding dominates
/// both memory and the dense inner kernel — so refusing it early guards
/// the conversion path against hostile scatter patterns that would
/// otherwise allocate `nnz * block^2` elements. Mirrors DIA's
/// `DEFAULT_MAX_DIAGS` and ELL's `DEFAULT_MAX_WIDTH`.
pub const DEFAULT_MAX_EXPANSION: usize = 8;

/// Payload sizes at or below this many elements (8 MiB of `f64`) are
/// always accepted: small matrices cannot blow memory up no matter how
/// scattered they are, and the expansion cap only matters at scale.
pub const PAYLOAD_GUARD_FLOOR: usize = 1 << 20;

/// Sparse matrix in block sparse row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BsrMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Block edge length `b`.
    block: usize,
    /// Number of block rows (`ceil(nrows / b)`).
    mb: usize,
    /// Row pointer over block rows, length `mb + 1`.
    row_ptr: Vec<usize>,
    /// Block column index per stored block.
    block_cols: Vec<u32>,
    /// Dense block payloads, `b * b` row-major values per block.
    blocks: Vec<S>,
}

impl<S: Scalar> BsrMatrix<S> {
    /// Converts from COO with the paper's default `4 x 4` blocks.
    ///
    /// Refuses (with [`SparseError::TooManyBlocks`]) inputs whose block
    /// payload would exceed [`DEFAULT_MAX_EXPANSION`] elements per
    /// stored nonzero once past [`PAYLOAD_GUARD_FLOOR`] — the cap is
    /// checked *before* the payload is allocated, so a hostile scatter
    /// pattern cannot OOM the conversion path.
    pub fn from_coo(coo: &CooMatrix<S>) -> Result<Self, SparseError> {
        Self::from_coo_with_block(coo, DEFAULT_BLOCK_SIZE)
    }

    /// Converts from COO with an explicit block edge length and the
    /// default payload cap (see [`BsrMatrix::from_coo`]).
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn from_coo_with_block(coo: &CooMatrix<S>, block: usize) -> Result<Self, SparseError> {
        let cap = PAYLOAD_GUARD_FLOOR.max(coo.nnz().saturating_mul(DEFAULT_MAX_EXPANSION));
        Self::from_coo_with_limit(coo, block, cap)
    }

    /// Converts from COO, refusing to materialise more than
    /// `max_payload` block-payload elements (`nblocks * block^2`).
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn from_coo_with_limit(
        coo: &CooMatrix<S>,
        block: usize,
        max_payload: usize,
    ) -> Result<Self, SparseError> {
        assert!(block > 0, "block size must be positive");
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let mb = nrows.div_ceil(block);
        // COO is sorted by (row, col), so blocks keyed by
        // (row / b, col / b) arrive *grouped by block row* but not sorted
        // within it; collect per-block-row, then sort block columns.
        let mut per_browk: Vec<Vec<u32>> = vec![Vec::new(); mb];
        for (r, c, _) in coo.iter() {
            per_browk[r / block].push((c / block) as u32);
        }
        let mut row_ptr = vec![0usize; mb + 1];
        for br in 0..mb {
            per_browk[br].sort_unstable();
            per_browk[br].dedup();
            row_ptr[br + 1] = row_ptr[br] + per_browk[br].len();
        }
        let nblocks = row_ptr[mb];
        if nblocks.saturating_mul(block * block) > max_payload {
            return Err(SparseError::TooManyBlocks {
                nblocks,
                limit: max_payload / (block * block),
            });
        }
        let mut block_cols = Vec::with_capacity(nblocks);
        for cols in &per_browk {
            block_cols.extend_from_slice(cols);
        }
        let mut blocks = vec![S::ZERO; nblocks * block * block];
        for (r, c, v) in coo.iter() {
            let (br, bc) = (r / block, (c / block) as u32);
            let local = per_browk[br]
                .binary_search(&bc)
                .expect("block collected above");
            let bidx = row_ptr[br] + local;
            blocks[bidx * block * block + (r % block) * block + (c % block)] = v;
        }
        Ok(Self {
            nrows,
            ncols,
            nnz: coo.nnz(),
            block,
            mb,
            row_ptr,
            block_cols,
            blocks,
        })
    }

    /// Converts back to canonical COO (padding dropped).
    pub fn to_coo(&self) -> Result<CooMatrix<S>, SparseError> {
        let b = self.block;
        let mut builder = CooBuilder::new(self.nrows, self.ncols)?;
        builder.reserve(self.nnz);
        for br in 0..self.mb {
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.block_cols[k] as usize;
                for i in 0..b {
                    for j in 0..b {
                        let v = self.blocks[k * b * b + i * b + j];
                        if v != S::ZERO {
                            builder.push(br * b + i, bc * b + j, v)?;
                        }
                    }
                }
            }
        }
        Ok(builder.build())
    }

    /// Block edge length.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of stored dense blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.block_cols.len()
    }

    /// Number of logically stored nonzeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of block payload slots holding real nonzeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.blocks.len() as f64
    }

    /// Bytes occupied by pointers, block columns, and payloads.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.block_cols.len() * 4
            + self.blocks.len() * S::BYTES
    }

    /// Computes one block row of the product into `yrow`
    /// (`yrow.len() == min(b, nrows - br*b)`).
    fn block_row_dot(&self, br: usize, x: &[S], yrow: &mut [S]) {
        let b = self.block;
        yrow.fill(S::ZERO);
        let ilim = yrow.len();
        for k in self.row_ptr[br]..self.row_ptr[br + 1] {
            let bc = self.block_cols[k] as usize;
            let jlim = b.min(self.ncols - bc * b);
            let payload = &self.blocks[k * b * b..(k + 1) * b * b];
            for (i, out) in yrow.iter_mut().enumerate().take(ilim) {
                let row = &payload[i * b..i * b + jlim];
                let xs = &x[bc * b..bc * b + jlim];
                let mut acc = S::ZERO;
                for j in 0..jlim {
                    acc += row[j] * xs[j];
                }
                *out += acc;
            }
        }
    }
}

impl<S: Scalar> Spmv<S> for BsrMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        let b = self.block;
        for br in 0..self.mb {
            let lo = br * b;
            let hi = (lo + b).min(self.nrows);
            self.block_row_dot(br, x, &mut y[lo..hi]);
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.blocks.len() < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        let b = self.block;
        // Each y chunk covers whole block rows, so writes are disjoint.
        y.par_chunks_mut(b).enumerate().for_each(|(br, yrow)| {
            self.block_row_dot(br, x, yrow);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocky() -> CooMatrix<f64> {
        // Two dense 2x2 blocks on the diagonal plus one off-diagonal entry.
        CooMatrix::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
                (3, 2, 7.0),
                (3, 3, 8.0),
                (4, 0, 9.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn block_structure_detected() {
        let bsr = BsrMatrix::from_coo_with_block(&blocky(), 2).unwrap();
        // Block rows: {(0,0)}, {(1,1)}, {(2,0)} -> 3 blocks.
        assert_eq!(bsr.nblocks(), 3);
        assert_eq!(bsr.nnz(), 9);
        assert_eq!(bsr.block_size(), 2);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = blocky();
        for b in [1, 2, 3, 4, 7] {
            let bsr = BsrMatrix::from_coo_with_block(&coo, b).unwrap();
            assert_eq!(bsr.to_coo().unwrap(), coo, "block size {b}");
        }
    }

    #[test]
    fn spmv_matches_coo_including_edge_blocks() {
        let coo = blocky();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let want = coo.spmv_alloc(&x);
        for b in [1, 2, 3, 4] {
            let bsr = BsrMatrix::from_coo_with_block(&coo, b).unwrap();
            let got = bsr.spmv_alloc(&x);
            for (a, w) in got.iter().zip(&want) {
                assert!(a.approx_eq(*w, 1e-12), "block size {b}");
            }
        }
    }

    #[test]
    fn fill_ratio_distinguishes_blocky_from_scattered() {
        // Dense 4x4 blocks -> fill 1.0.
        let mut t = Vec::new();
        for bi in 0..4usize {
            for i in 0..4 {
                for j in 0..4 {
                    t.push((bi * 4 + i, bi * 4 + j, 1.0));
                }
            }
        }
        let coo = CooMatrix::from_triplets(16, 16, &t).unwrap();
        let bsr = BsrMatrix::from_coo(&coo).unwrap();
        assert_eq!(bsr.fill_ratio(), 1.0);
        // Scattered diagonal -> each entry alone in its block. Small
        // enough to pass the payload floor despite the 1/16 fill.
        let t: Vec<_> = (0..16).map(|i| (i, (i * 5) % 16, 1.0)).collect();
        let coo = CooMatrix::from_triplets(16, 16, &t).unwrap();
        let bsr = BsrMatrix::from_coo(&coo).unwrap();
        assert!(bsr.fill_ratio() <= 1.0 / 8.0);
    }

    #[test]
    fn block_size_one_equals_csr_semantics() {
        let coo = blocky();
        let bsr = BsrMatrix::from_coo_with_block(&coo, 1).unwrap();
        assert_eq!(bsr.nblocks(), coo.nnz());
        assert_eq!(bsr.fill_ratio(), 1.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 1024;
        let mut t = Vec::new();
        for bi in 0..(n / 4) {
            for blk in 0..5usize {
                for i in 0..4usize {
                    for j in 0..4usize {
                        t.push((
                            bi * 4 + i,
                            ((bi * 4 + j) + 16 * blk + 8 * (bi % 3)) % n,
                            (i + j + blk) as f64,
                        ));
                    }
                }
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let bsr = BsrMatrix::from_coo(&coo).unwrap();
        assert!(bsr.blocks.len() >= 1 << 14);
        let x: Vec<f64> = (0..n).map(|i| ((i % 29) as f64) * 0.3 - 4.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        bsr.spmv(&x, &mut y1);
        bsr.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let coo = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let _ = BsrMatrix::from_coo_with_block(&coo, 0);
    }

    #[test]
    fn explicit_payload_limit_refuses_scattered_pattern() {
        // 64 nonzeros, each alone in its 4x4 block: payload = 64 * 16.
        let t: Vec<_> = (0..64).map(|i| (i * 4, (i * 4 + 8) % 256, 1.0)).collect();
        let coo = CooMatrix::from_triplets(256, 256, &t).unwrap();
        let err = BsrMatrix::from_coo_with_limit(&coo, 4, 512).unwrap_err();
        match err {
            SparseError::TooManyBlocks { nblocks, limit } => {
                assert_eq!(nblocks, 64);
                assert_eq!(limit, 32);
            }
            other => panic!("expected TooManyBlocks, got {other:?}"),
        }
        // The same matrix converts fine with an adequate budget.
        assert!(BsrMatrix::from_coo_with_limit(&coo, 4, 64 * 16).is_ok());
    }

    #[test]
    fn default_cap_refuses_hostile_scatter_at_scale() {
        // Past the floor, every nonzero alone in an 8x8 block means a
        // 64x expansion — far beyond DEFAULT_MAX_EXPANSION.
        let n = 40_000usize;
        let t: Vec<_> = (0..n).map(|i| (i, (i * 13 + 7) % n, 1.0)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        assert!(matches!(
            BsrMatrix::from_coo_with_block(&coo, 8),
            Err(SparseError::TooManyBlocks { .. })
        ));
        // The default 4x4 block expands 16x on the same pattern: payload
        // 640k elements, under the 1 Mi floor, so it is still accepted.
        assert!(BsrMatrix::from_coo(&coo).is_ok());
    }
}
