//! Diagonal (DIA) format — stores whole diagonals densely.
//!
//! DIA keeps one dense lane per occupied diagonal plus an `offsets`
//! array (`offset = col - row`). It is extremely fast for banded
//! matrices (no column indices to read, perfectly strided access) and
//! catastrophically wasteful when nonzeros scatter across many
//! diagonals — which is exactly why format *selection* matters and why
//! naive image-scaling of a matrix (which fabricates diagonals,
//! Figure 4 of the paper) misleads a learned selector.
//!
//! Layout: `data[d * nrows + i]` holds `A[i, i + offsets[d]]`.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default cap on materialised diagonals: conversions needing more
/// return [`SparseError::TooManyDiagonals`] instead of allocating
/// O(ndiags * nrows) memory for a matrix that DIA could never win on.
pub const DEFAULT_MAX_DIAGS: usize = 8192;

/// Sparse matrix in diagonal form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Sorted diagonal offsets (`col - row`).
    offsets: Vec<i64>,
    /// `offsets.len() * nrows` elements, lane-major.
    data: Vec<S>,
}

impl<S: Scalar> DiaMatrix<S> {
    /// Converts from COO with the default diagonal cap.
    pub fn from_coo(coo: &CooMatrix<S>) -> Result<Self, SparseError> {
        Self::from_coo_with_limit(coo, DEFAULT_MAX_DIAGS)
    }

    /// Converts from COO, failing if more than `max_diags` distinct
    /// diagonals would be materialised.
    pub fn from_coo_with_limit(coo: &CooMatrix<S>, max_diags: usize) -> Result<Self, SparseError> {
        let mut offsets: Vec<i64> = coo.iter().map(|(r, c, _)| c as i64 - r as i64).collect();
        offsets.sort_unstable();
        offsets.dedup();
        if offsets.len() > max_diags {
            return Err(SparseError::TooManyDiagonals {
                ndiags: offsets.len(),
                limit: max_diags,
            });
        }
        let nrows = coo.nrows();
        let mut data = vec![S::ZERO; offsets.len() * nrows];
        for (r, c, v) in coo.iter() {
            let off = c as i64 - r as i64;
            let d = offsets.binary_search(&off).expect("offset collected above");
            data[d * nrows + r] = v;
        }
        Ok(Self {
            nrows,
            ncols: coo.ncols(),
            nnz: coo.nnz(),
            offsets,
            data,
        })
    }

    /// Converts back to canonical COO (zero padding entries dropped).
    pub fn to_coo(&self) -> CooMatrix<S> {
        let mut b = crate::coo::CooBuilder::new(self.nrows, self.ncols)
            .expect("shape validated at construction");
        b.reserve(self.nnz);
        for (d, &off) in self.offsets.iter().enumerate() {
            for i in 0..self.nrows {
                let j = i as i64 + off;
                if j < 0 || j >= self.ncols as i64 {
                    continue;
                }
                let v = self.data[d * self.nrows + i];
                if v != S::ZERO {
                    b.push(i, j as usize, v).expect("index in range");
                }
            }
        }
        b.build()
    }

    /// Number of materialised diagonals.
    #[inline]
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// Number of logically stored nonzeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Diagonal offsets, sorted ascending.
    #[inline]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Fraction of the materialised lanes that holds real nonzeros;
    /// DIA is competitive only when this is close to 1.
    pub fn fill_ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.data.len() as f64
    }

    /// Bytes occupied by offsets plus lane data.
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.data.len() * S::BYTES
    }

    #[inline]
    fn row_dot(&self, i: usize, x: &[S]) -> S {
        let mut acc = S::ZERO;
        for (d, &off) in self.offsets.iter().enumerate() {
            let j = i as i64 + off;
            if j >= 0 && j < self.ncols as i64 {
                acc += self.data[d * self.nrows + i] * x[j as usize];
            }
        }
        acc
    }
}

impl<S: Scalar> Spmv<S> for DiaMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        // Lane-major traversal: stream each diagonal contiguously, the
        // access pattern DIA is designed for.
        y.fill(S::ZERO);
        for (d, &off) in self.offsets.iter().enumerate() {
            let istart = (-off).max(0) as usize;
            let iend = (self.nrows as i64).min(self.ncols as i64 - off).max(0) as usize;
            let lane = &self.data[d * self.nrows..(d + 1) * self.nrows];
            for i in istart..iend {
                y[i] += lane[i] * x[(i as i64 + off) as usize];
            }
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        if self.data.len() < 1 << 15 {
            self.spmv(x, y);
            return;
        }
        // Row-block partitioning: each thread owns a contiguous y range
        // and walks all diagonals restricted to it.
        let chunk = crate::spmv::par_chunk_rows(self.nrows, 4);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, ys)| {
            let base = ci * chunk;
            for (i, out) in ys.iter_mut().enumerate() {
                *out = self.row_dot(base + i, x);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DIA example from Figure 1 of the paper (4x4, offsets -2, 0, 1).
    fn figure1() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_has_three_diagonals() {
        let dia = DiaMatrix::from_coo(&figure1()).unwrap();
        assert_eq!(dia.offsets(), &[-2, 0, 1]);
        assert_eq!(dia.ndiags(), 3);
        assert_eq!(dia.nnz(), 9);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = figure1();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert_eq!(dia.to_coo(), coo);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = figure1();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(dia.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn rectangular_matrices_work() {
        // Wide matrix: diagonals extend past nrows.
        let coo = CooMatrix::from_triplets(2, 5, &[(0, 0, 1.0), (0, 4, 2.0), (1, 3, 3.0)]).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert_eq!(dia.to_coo(), coo);
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dia.spmv_alloc(&x), coo.spmv_alloc(&x));
        // Tall matrix: negative offsets dominate.
        let coo = CooMatrix::from_triplets(5, 2, &[(4, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert_eq!(dia.to_coo(), coo);
    }

    #[test]
    fn diagonal_limit_enforced() {
        // Anti-diagonal matrix: every entry on its own diagonal.
        let n = 16;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let e = DiaMatrix::from_coo_with_limit(&coo, 8).unwrap_err();
        assert!(matches!(
            e,
            SparseError::TooManyDiagonals {
                ndiags: 16,
                limit: 8
            }
        ));
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        // Perfect main diagonal: every lane slot used.
        let t: Vec<_> = (0..8).map(|i| (i, i, 1.0)).collect();
        let coo = CooMatrix::from_triplets(8, 8, &t).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert_eq!(dia.fill_ratio(), 1.0);
        // Single off-corner entry: 1 of 8 slots used.
        let coo = CooMatrix::from_triplets(8, 8, &[(7, 0, 1.0)]).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert_eq!(dia.fill_ratio(), 1.0 / 8.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Large banded matrix to clear the parallel threshold.
        let n = 4096;
        let mut t = Vec::new();
        for i in 0..n {
            for off in [-9i64, -3, -1, 0, 1, 3, 7, 64] {
                let j = i as i64 + off;
                if (0..n as i64).contains(&j) {
                    t.push((i, j as usize, (i as f64 * 0.01) + off as f64));
                }
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        assert!(dia.ndiags() * n >= 1 << 15);
        let x: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        dia.spmv(&x, &mut y1);
        dia.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn storage_counts_padding() {
        let coo = CooMatrix::from_triplets(8, 8, &[(7, 0, 1.0)]).unwrap();
        let dia = DiaMatrix::from_coo(&coo).unwrap();
        // One lane of 8 doubles plus one i64 offset.
        assert_eq!(dia.storage_bytes(), 8 + 8 * 8);
    }
}
