//! CSR5-style tiled segmented-sum format (after Liu & Vinter, ICS'15).
//!
//! CSR5 partitions the *nonzeros* (not the rows) into equal-size tiles
//! and runs a segmented sum within each tile, so execution time is
//! insensitive to row-length skew — the property that makes it win on
//! power-law matrices where row-parallel CSR suffers load imbalance and
//! (on GPUs) warp divergence.
//!
//! This implementation keeps the defining ingredients — equal-nnz tiles,
//! per-tile start-row metadata computed at construction, per-tile
//! segmented reduction with carry entries for rows that straddle tile
//! boundaries — while staying in safe Rust: tiles emit `(row, partial)`
//! pairs that a cheap sequential pass scatters into `y`. A production
//! GPU kernel would scatter in place with atomics; the *load-balance*
//! behaviour, which is what the cost model and benchmarks exercise, is
//! the same.

use crate::coo::CooMatrix;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default nonzeros per tile (ω·σ in CSR5 terms).
pub const DEFAULT_TILE_NNZ: usize = 256;

/// Sparse matrix in CSR5-style tiled form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr5Matrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<S>,
    tile_nnz: usize,
    /// Row containing the first entry of each tile.
    tile_start_row: Vec<u32>,
}

impl<S: Scalar> Csr5Matrix<S> {
    /// Converts from COO with the default tile size.
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        Self::from_coo_with_tile(coo, DEFAULT_TILE_NNZ)
    }

    /// Converts from COO with an explicit nonzeros-per-tile.
    ///
    /// # Panics
    /// Panics if `tile_nnz == 0`.
    pub fn from_coo_with_tile(coo: &CooMatrix<S>, tile_nnz: usize) -> Self {
        assert!(tile_nnz > 0, "tile size must be positive");
        let row_ptr = coo.row_offsets();
        let nnz = coo.nnz();
        let ntiles = nnz.div_ceil(tile_nnz);
        let mut tile_start_row = Vec::with_capacity(ntiles);
        for t in 0..ntiles {
            let first = t * tile_nnz;
            // Row r owns entry `first` iff row_ptr[r] <= first < row_ptr[r+1].
            let r = row_ptr.partition_point(|&p| p <= first) - 1;
            tile_start_row.push(r as u32);
        }
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            row_ptr,
            cols: coo.col_indices().to_vec(),
            vals: coo.values().to_vec(),
            tile_nnz,
            tile_start_row,
        }
    }

    /// Converts back to canonical COO.
    pub fn to_coo(&self) -> CooMatrix<S> {
        let mut rows = Vec::with_capacity(self.vals.len());
        for r in 0..self.nrows {
            for _ in self.row_ptr[r]..self.row_ptr[r + 1] {
                rows.push(r as u32);
            }
        }
        CooMatrix::from_sorted_parts(
            self.nrows,
            self.ncols,
            rows,
            self.cols.clone(),
            self.vals.clone(),
        )
        .expect("CSR5 invariants imply valid COO")
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of equal-nnz tiles.
    #[inline]
    pub fn ntiles(&self) -> usize {
        self.tile_start_row.len()
    }

    /// Nonzeros per tile.
    #[inline]
    pub fn tile_nnz(&self) -> usize {
        self.tile_nnz
    }

    /// Bytes occupied by all arrays including tile metadata.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.vals.len() * S::BYTES
            + self.tile_start_row.len() * 4
    }

    /// Segmented sum over one tile: emits `(row, partial_sum)` pairs for
    /// every row that has at least one entry in `[lo, hi)`.
    fn tile_partials(&self, t: usize, lo: usize, hi: usize, x: &[S]) -> Vec<(u32, S)> {
        let mut out = Vec::with_capacity(8);
        let mut r = self.tile_start_row[t] as usize;
        let mut i = lo;
        while i < hi {
            // Advance to the row owning entry i (skipping empty rows).
            while self.row_ptr[r + 1] <= i {
                r += 1;
            }
            let seg_end = self.row_ptr[r + 1].min(hi);
            let mut acc = S::ZERO;
            while i < seg_end {
                acc += self.vals[i] * x[self.cols[i] as usize];
                i += 1;
            }
            out.push((r as u32, acc));
        }
        out
    }
}

impl<S: Scalar> Spmv<S> for Csr5Matrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        // Sequentially the tiled traversal degenerates to a CSR scan.
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = S::ZERO;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[i] * x[self.cols[i] as usize];
            }
            *yr = acc;
        }
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        let nnz = self.vals.len();
        if nnz < 1 << 14 {
            self.spmv(x, y);
            return;
        }
        // Phase 1 (parallel): equal-work tiles, each a segmented sum.
        let partials: Vec<Vec<(u32, S)>> = (0..self.ntiles())
            .into_par_iter()
            .map(|t| {
                let lo = t * self.tile_nnz;
                let hi = (lo + self.tile_nnz).min(nnz);
                self.tile_partials(t, lo, hi, x)
            })
            .collect();
        // Phase 2 (sequential): scatter-add carries. O(nrows + ntiles).
        y.fill(S::ZERO);
        for tile in &partials {
            for &(r, v) in tile {
                y[r as usize] += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(n: usize) -> CooMatrix<f64> {
        // Power-law-ish: row i has ~n/(i+1) entries.
        let mut t = Vec::new();
        for i in 0..n {
            let len = (n / (i + 1)).max(1);
            for k in 0..len {
                t.push((i, (i + k * 3) % n, 1.0 + (k % 7) as f64));
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn tiles_cover_all_nonzeros() {
        let coo = skewed(64);
        let m = Csr5Matrix::from_coo_with_tile(&coo, 16);
        assert_eq!(m.ntiles(), m.nnz().div_ceil(16));
    }

    #[test]
    fn tile_start_rows_are_monotonic() {
        let coo = skewed(64);
        let m = Csr5Matrix::from_coo_with_tile(&coo, 16);
        for w in m.tile_start_row.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(m.tile_start_row[0], 0);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = skewed(32);
        let m = Csr5Matrix::from_coo(&coo);
        assert_eq!(m.to_coo(), coo);
    }

    #[test]
    fn sequential_spmv_matches_coo() {
        let coo = skewed(50);
        let m = Csr5Matrix::from_coo(&coo);
        let x: Vec<f64> = (0..50).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let y1 = m.spmv_alloc(&x);
        let y2 = coo.spmv_alloc(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_skewed_matrix() {
        // Skewed row lengths with collision-free columns (29 is coprime
        // with 800) so nnz clears the parallel-dispatch threshold.
        let n = 800;
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..(16 + i % 32) {
                t.push((i, (i * 13 + k * 29) % n, 1.0 + (k % 7) as f64));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let m = Csr5Matrix::from_coo_with_tile(&coo, 64);
        assert!(m.nnz() > 1 << 14);
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.spmv(&x, &mut y1);
        m.spmv_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn rows_straddling_tiles_are_summed_correctly() {
        // One row much longer than the tile: its sum is split across
        // several carries that must recombine exactly.
        let mut t: Vec<_> = (0..100usize).map(|j| (1usize, j, 1.0)).collect();
        t.push((0, 0, 5.0));
        t.push((2, 50, 7.0));
        let coo = CooMatrix::from_triplets(3, 100, &t).unwrap();
        let m = Csr5Matrix::from_coo_with_tile(&coo, 8);
        let x = vec![1.0; 100];
        // Force the parallel path despite the small size by calling the
        // tile machinery directly through a large-matrix clone check.
        let partials: Vec<Vec<(u32, f64)>> = (0..m.ntiles())
            .map(|ti| {
                let lo = ti * m.tile_nnz();
                let hi = (lo + m.tile_nnz()).min(m.nnz());
                m.tile_partials(ti, lo, hi, &x)
            })
            .collect();
        let mut y = vec![0.0; 3];
        for tile in &partials {
            for &(r, v) in tile {
                y[r as usize] += v;
            }
        }
        assert_eq!(y, vec![5.0, 100.0, 7.0]);
    }

    #[test]
    fn empty_rows_are_skipped_in_tiles() {
        let coo = CooMatrix::from_triplets(6, 6, &[(0, 0, 1.0), (5, 5, 2.0)]).unwrap();
        let m = Csr5Matrix::from_coo_with_tile(&coo, 1);
        assert_eq!(m.tile_start_row.as_slice(), &[0, 5]);
        let x = vec![1.0; 6];
        assert_eq!(m.spmv_alloc(&x), vec![1.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_panics() {
        let coo = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let _ = Csr5Matrix::from_coo_with_tile(&coo, 0);
    }
}
