//! The SpMV kernel trait implemented by every storage format.

use crate::scalar::Scalar;

/// Sparse matrix–vector multiplication: `y = A * x`.
///
/// `x.len()` must equal [`Spmv::ncols`] and `y.len()` must equal
/// [`Spmv::nrows`]; kernels panic otherwise (these are programmer errors,
/// not data errors). `y` is overwritten, not accumulated into.
pub trait Spmv<S: Scalar>: Send + Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// Sequential kernel.
    fn spmv(&self, x: &[S], y: &mut [S]);

    /// Parallel kernel. The default falls back to the sequential kernel;
    /// formats override it with a partitioning scheme that suits their
    /// layout. Results match `spmv` up to floating-point associativity.
    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        self.spmv(x, y);
    }

    /// Convenience allocating wrapper around [`Spmv::spmv`].
    fn spmv_alloc(&self, x: &[S]) -> Vec<S> {
        let mut y = vec![S::ZERO; self.nrows()];
        self.spmv(x, &mut y);
        y
    }
}

/// Row-chunk size for rayon-parallel SpMV kernels: splits `nrows` into
/// roughly `factor` chunks per thread (over-decomposition smooths load
/// imbalance from skewed row lengths), floored at 64 rows so tiny
/// matrices don't drown in task overhead. Formats pick `factor` by how
/// uneven their per-row work is — CSR uses 8, ELL/HYB 4.
pub fn par_chunk_rows(nrows: usize, factor: usize) -> usize {
    (nrows / (rayon::current_num_threads().max(1) * factor)).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal Spmv impl to exercise the trait defaults.
    struct Identity(usize);

    impl Spmv<f64> for Identity {
        fn nrows(&self) -> usize {
            self.0
        }
        fn ncols(&self) -> usize {
            self.0
        }
        fn spmv(&self, x: &[f64], y: &mut [f64]) {
            y.copy_from_slice(x);
        }
    }

    #[test]
    fn default_par_falls_back_to_sequential() {
        let id = Identity(3);
        let mut y = vec![0.0; 3];
        id.spmv_par(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spmv_alloc_allocates_correct_length() {
        let id = Identity(2);
        assert_eq!(id.spmv_alloc(&[4.0, 5.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn par_chunk_rows_floors_small_matrices() {
        assert_eq!(par_chunk_rows(0, 8), 64);
        assert_eq!(par_chunk_rows(63, 8), 64);
        assert_eq!(par_chunk_rows(10_000, 1), {
            let t = rayon::current_num_threads().max(1);
            (10_000 / t).max(64)
        });
    }

    #[test]
    fn par_chunk_rows_scales_with_factor() {
        let t = rayon::current_num_threads().max(1);
        let big = 1 << 20;
        assert_eq!(par_chunk_rows(big, 8), (big / (t * 8)).max(64));
        // More chunks per thread -> smaller chunks (down to the floor).
        assert!(par_chunk_rows(big, 8) <= par_chunk_rows(big, 4));
    }
}
