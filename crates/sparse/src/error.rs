//! Error type shared by all sparse-matrix constructors and I/O.

use std::fmt;

/// Errors produced by format constructors, conversions, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A coordinate was outside the declared matrix dimensions.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// A matrix dimension was zero where a non-empty matrix is required.
    EmptyDimension { nrows: usize, ncols: usize },
    /// Converting to DIA would materialise more diagonals than the limit.
    TooManyDiagonals { ndiags: usize, limit: usize },
    /// Converting to ELL would materialise a row width above the limit.
    RowTooWide { width: usize, limit: usize },
    /// Converting to BSR would materialise more dense blocks than the
    /// fill-ratio cap allows (hostile scatter patterns would OOM).
    TooManyBlocks { nblocks: usize, limit: usize },
    /// Structural invariant violated (sortedness, duplicate entry, ...).
    InvalidStructure(String),
    /// Input/x/y vector length did not match the matrix shape.
    DimensionMismatch {
        expected: usize,
        got: usize,
        what: &'static str,
    },
    /// MatrixMarket parse failure with the offending line number.
    Parse { line: usize, message: String },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            SparseError::EmptyDimension { nrows, ncols } => {
                write!(f, "matrix dimensions must be positive, got {nrows}x{ncols}")
            }
            SparseError::TooManyDiagonals { ndiags, limit } => write!(
                f,
                "DIA conversion needs {ndiags} diagonals, above the limit of {limit}"
            ),
            SparseError::RowTooWide { width, limit } => write!(
                f,
                "ELL conversion needs row width {width}, above the limit of {limit}"
            ),
            SparseError::TooManyBlocks { nblocks, limit } => write!(
                f,
                "BSR conversion would materialise {nblocks} blocks, above the limit of {limit}"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            SparseError::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what} length mismatch: expected {expected}, got {got}"),
            SparseError::Parse { line, message } => {
                write!(f, "MatrixMarket parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_coordinates() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 4,
            ncols: 4,
        };
        let s = e.to_string();
        assert!(s.contains("(5, 7)") && s.contains("4x4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = SparseError::TooManyDiagonals {
            ndiags: 10,
            limit: 5,
        };
        assert_eq!(e.clone(), e);
    }
}
