//! Small dense matrix used as the ground-truth reference in tests and
//! by the CNN input representations (which are tiny dense images).

use crate::coo::CooMatrix;
use crate::scalar::Scalar;
use crate::spmv::Spmv;
use serde::{Deserialize, Serialize};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix<S: Scalar> {
    nrows: usize,
    ncols: usize,
    data: Vec<S>,
}

impl<S: Scalar> DenseMatrix<S> {
    /// Zero-filled matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        assert!(nrows > 0 && ncols > 0, "dimensions must be positive");
        Self {
            nrows,
            ncols,
            data: vec![S::ZERO; nrows * ncols],
        }
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length must match shape");
        assert!(nrows > 0 && ncols > 0, "dimensions must be positive");
        Self { nrows, ncols, data }
    }

    /// Densifies a sparse matrix.
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        Self::from_row_major(coo.nrows(), coo.ncols(), coo.to_dense())
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> S {
        self.data[r * self.ncols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut S {
        &mut self.data[r * self.ncols + c]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Count of exactly-zero elements' complement.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != S::ZERO).count()
    }
}

impl<S: Scalar> Spmv<S> for DenseMatrix<S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            let mut acc = S::ZERO;
            for (a, b) in row.iter().zip(x) {
                acc += *a * *b;
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densify_and_multiply_matches_sparse() {
        let coo = CooMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]).unwrap();
        let d = DenseMatrix::from_coo(&coo);
        assert_eq!(d.nnz(), 3);
        let x = [2.0, 5.0];
        assert_eq!(d.spmv_alloc(&x), coo.spmv_alloc(&x));
    }

    #[test]
    fn get_and_set_round_trip() {
        let mut d = DenseMatrix::<f32>::zeros(2, 2);
        *d.get_mut(1, 0) = 4.5;
        assert_eq!(d.get(1, 0), 4.5);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_shape_panics() {
        let _ = DenseMatrix::from_row_major(2, 2, vec![1.0f64; 3]);
    }
}
