//! Format identifiers and the type-erased [`AnyMatrix`] dispatcher.
//!
//! The selector pipeline works with format *IDs* (class labels), so this
//! module provides the enum, the per-platform candidate sets matching
//! the paper's evaluation (SMATLib on CPU, cuSPARSE + CSR5 on GPU), and
//! a dispatcher that converts a canonical COO matrix into any chosen
//! format and runs SpMV on it.

use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::csr5::Csr5Matrix;
use crate::dia::DiaMatrix;
use crate::ell::EllMatrix;
use crate::error::SparseError;
use crate::hyb::HybMatrix;
use crate::merge_csr::MergeCsrMatrix;
use crate::scalar::Scalar;
use crate::sell::SellMatrix;
use crate::spmv::Spmv;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Sparse storage format identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SparseFormat {
    /// Coordinate list.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Diagonal.
    Dia,
    /// ELLPACK.
    Ell,
    /// Hybrid ELL + COO.
    Hyb,
    /// Block sparse row (4x4 blocks by default).
    Bsr,
    /// CSR5-style tiled segmented-sum.
    Csr5,
    /// SELL-C-σ sliced ELLPACK with σ-window row sorting.
    Sell,
    /// CSR storage with the merge-path load-balanced parallel kernel.
    MergeCsr,
}

impl SparseFormat {
    /// The CPU candidate set used by the paper's SMATLib experiments
    /// (Table 2): COO, CSR, DIA, ELL.
    pub const CPU_SET: [SparseFormat; 4] = [
        SparseFormat::Coo,
        SparseFormat::Csr,
        SparseFormat::Dia,
        SparseFormat::Ell,
    ];

    /// The GPU candidate set used by the paper's cuSPARSE(+CSR5)
    /// experiments (Table 3): CSR, ELL, HYB, BSR, CSR5, COO.
    pub const GPU_SET: [SparseFormat; 6] = [
        SparseFormat::Csr,
        SparseFormat::Ell,
        SparseFormat::Hyb,
        SparseFormat::Bsr,
        SparseFormat::Csr5,
        SparseFormat::Coo,
    ];

    /// The many-core CPU candidate set: the SMATLib CPU formats plus
    /// the two wide-machine kernels from the follow-on SpMV literature
    /// (arXiv:1805.11938) — SELL-C-σ and merge-path CSR.
    pub const MANYCORE_SET: [SparseFormat; 6] = [
        SparseFormat::Coo,
        SparseFormat::Csr,
        SparseFormat::Dia,
        SparseFormat::Ell,
        SparseFormat::Sell,
        SparseFormat::MergeCsr,
    ];

    /// All formats implemented by this crate. New formats are appended
    /// so existing positional tables (per-format bias, timer slots)
    /// keep their indices across versions.
    pub const ALL: [SparseFormat; 9] = [
        SparseFormat::Coo,
        SparseFormat::Csr,
        SparseFormat::Dia,
        SparseFormat::Ell,
        SparseFormat::Hyb,
        SparseFormat::Bsr,
        SparseFormat::Csr5,
        SparseFormat::Sell,
        SparseFormat::MergeCsr,
    ];

    /// Stable short name (also the `FromStr` spelling).
    pub fn name(self) -> &'static str {
        match self {
            SparseFormat::Coo => "COO",
            SparseFormat::Csr => "CSR",
            SparseFormat::Dia => "DIA",
            SparseFormat::Ell => "ELL",
            SparseFormat::Hyb => "HYB",
            SparseFormat::Bsr => "BSR",
            SparseFormat::Csr5 => "CSR5",
            SparseFormat::Sell => "SELL",
            SparseFormat::MergeCsr => "MCSR",
        }
    }

    /// Index of this format within a candidate set (the class label used
    /// by both the CNN and the decision tree), or `None` if absent.
    pub fn label_in(self, set: &[SparseFormat]) -> Option<usize> {
        set.iter().position(|&f| f == self)
    }
}

impl fmt::Display for SparseFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SparseFormat {
    type Err = SparseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "COO" => Ok(SparseFormat::Coo),
            "CSR" => Ok(SparseFormat::Csr),
            "DIA" => Ok(SparseFormat::Dia),
            "ELL" => Ok(SparseFormat::Ell),
            "HYB" => Ok(SparseFormat::Hyb),
            "BSR" => Ok(SparseFormat::Bsr),
            "CSR5" => Ok(SparseFormat::Csr5),
            "SELL" => Ok(SparseFormat::Sell),
            "MCSR" => Ok(SparseFormat::MergeCsr),
            other => Err(SparseError::InvalidStructure(format!(
                "unknown format name '{other}'"
            ))),
        }
    }
}

/// A sparse matrix stored in any of the supported formats, dispatching
/// [`Spmv`] to the concrete kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyMatrix<S: Scalar> {
    /// Coordinate list.
    Coo(CooMatrix<S>),
    /// Compressed sparse row.
    Csr(CsrMatrix<S>),
    /// Diagonal.
    Dia(DiaMatrix<S>),
    /// ELLPACK.
    Ell(EllMatrix<S>),
    /// Hybrid ELL + COO.
    Hyb(HybMatrix<S>),
    /// Block sparse row.
    Bsr(BsrMatrix<S>),
    /// CSR5-style tiled.
    Csr5(Csr5Matrix<S>),
    /// SELL-C-σ sliced ELLPACK.
    Sell(SellMatrix<S>),
    /// Merge-path CSR.
    MergeCsr(MergeCsrMatrix<S>),
}

impl<S: Scalar> AnyMatrix<S> {
    /// Converts a canonical COO matrix into the requested format.
    ///
    /// DIA, ELL, and BSR conversions can fail when the matrix would blow
    /// their padding limits — the same reason a real autotuner excludes
    /// those formats for such matrices.
    pub fn convert(coo: &CooMatrix<S>, format: SparseFormat) -> Result<Self, SparseError> {
        Ok(match format {
            SparseFormat::Coo => AnyMatrix::Coo(coo.clone()),
            SparseFormat::Csr => AnyMatrix::Csr(CsrMatrix::from_coo(coo)),
            SparseFormat::Dia => AnyMatrix::Dia(DiaMatrix::from_coo(coo)?),
            SparseFormat::Ell => AnyMatrix::Ell(EllMatrix::from_coo(coo)?),
            SparseFormat::Hyb => AnyMatrix::Hyb(HybMatrix::from_coo(coo)),
            SparseFormat::Bsr => AnyMatrix::Bsr(BsrMatrix::from_coo(coo)?),
            SparseFormat::Csr5 => AnyMatrix::Csr5(Csr5Matrix::from_coo(coo)),
            SparseFormat::Sell => AnyMatrix::Sell(SellMatrix::from_coo(coo)),
            SparseFormat::MergeCsr => AnyMatrix::MergeCsr(MergeCsrMatrix::from_coo(coo)),
        })
    }

    /// The format this matrix is stored in.
    pub fn format(&self) -> SparseFormat {
        match self {
            AnyMatrix::Coo(_) => SparseFormat::Coo,
            AnyMatrix::Csr(_) => SparseFormat::Csr,
            AnyMatrix::Dia(_) => SparseFormat::Dia,
            AnyMatrix::Ell(_) => SparseFormat::Ell,
            AnyMatrix::Hyb(_) => SparseFormat::Hyb,
            AnyMatrix::Bsr(_) => SparseFormat::Bsr,
            AnyMatrix::Csr5(_) => SparseFormat::Csr5,
            AnyMatrix::Sell(_) => SparseFormat::Sell,
            AnyMatrix::MergeCsr(_) => SparseFormat::MergeCsr,
        }
    }

    /// Converts back to canonical COO.
    ///
    /// Fallible because an `AnyMatrix` can arrive through
    /// deserialization: a hostile payload may violate the structural
    /// invariants `convert` would have established, and HYB/BSR report
    /// that as a typed error instead of panicking.
    pub fn to_coo(&self) -> Result<CooMatrix<S>, SparseError> {
        Ok(match self {
            AnyMatrix::Coo(m) => m.clone(),
            AnyMatrix::Csr(m) => m.to_coo(),
            AnyMatrix::Dia(m) => m.to_coo(),
            AnyMatrix::Ell(m) => m.to_coo(),
            AnyMatrix::Hyb(m) => m.to_coo()?,
            AnyMatrix::Bsr(m) => m.to_coo()?,
            AnyMatrix::Csr5(m) => m.to_coo(),
            AnyMatrix::Sell(m) => m.to_coo()?,
            AnyMatrix::MergeCsr(m) => m.to_coo()?,
        })
    }

    fn as_spmv(&self) -> &dyn Spmv<S> {
        match self {
            AnyMatrix::Coo(m) => m,
            AnyMatrix::Csr(m) => m,
            AnyMatrix::Dia(m) => m,
            AnyMatrix::Ell(m) => m,
            AnyMatrix::Hyb(m) => m,
            AnyMatrix::Bsr(m) => m,
            AnyMatrix::Csr5(m) => m,
            AnyMatrix::Sell(m) => m,
            AnyMatrix::MergeCsr(m) => m,
        }
    }
}

impl<S: Scalar> Spmv<S> for AnyMatrix<S> {
    fn nrows(&self) -> usize {
        self.as_spmv().nrows()
    }

    fn ncols(&self) -> usize {
        self.as_spmv().ncols()
    }

    fn spmv(&self, x: &[S], y: &mut [S]) {
        #[cfg(feature = "obs")]
        let _t = kernel_timers::time(self.format(), false);
        self.as_spmv().spmv(x, y);
    }

    fn spmv_par(&self, x: &[S], y: &mut [S]) {
        #[cfg(feature = "obs")]
        let _t = kernel_timers::time(self.format(), true);
        self.as_spmv().spmv_par(x, y);
    }
}

/// Per-format SpMV timers (`spmv_ns{format,mode}` in the process-wide
/// registry), compiled in only under the `obs` feature so the default
/// dispatch stays exactly the uninstrumented code. Histogram handles
/// are resolved once into a static table; the per-call cost is two
/// `Instant` reads and one lock-free histogram record.
#[cfg(feature = "obs")]
mod kernel_timers {
    use super::SparseFormat;
    use dnnspmv_obs::LatencyHistogram;
    use std::sync::{Arc, OnceLock};
    use std::time::Instant;

    fn table() -> &'static [[Arc<LatencyHistogram>; 2]; 9] {
        static TABLE: OnceLock<[[Arc<LatencyHistogram>; 2]; 9]> = OnceLock::new();
        TABLE.get_or_init(|| {
            std::array::from_fn(|i| {
                let fmt = SparseFormat::ALL[i];
                let hist = |mode: &str| {
                    dnnspmv_obs::global()
                        .histogram("spmv_ns", &[("format", fmt.name()), ("mode", mode)])
                };
                [hist("serial"), hist("parallel")]
            })
        })
    }

    pub(super) struct KernelTimer {
        hist: Arc<LatencyHistogram>,
        start: Instant,
    }

    pub(super) fn time(format: SparseFormat, parallel: bool) -> KernelTimer {
        let idx = format
            .label_in(&SparseFormat::ALL)
            .expect("ALL lists every format");
        KernelTimer {
            hist: Arc::clone(&table()[idx][usize::from(parallel)]),
            start: Instant::now(),
        }
    }

    impl Drop for KernelTimer {
        fn drop(&mut self) {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<f64> {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 5.0),
                (1, 1, 2.0),
                (1, 2, 6.0),
                (2, 0, 8.0),
                (2, 2, 3.0),
                (2, 3, 7.0),
                (3, 1, 9.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for f in SparseFormat::ALL {
            assert_eq!(f.name().parse::<SparseFormat>().unwrap(), f);
        }
        assert!("XYZ".parse::<SparseFormat>().is_err());
    }

    #[test]
    fn candidate_sets_match_paper() {
        assert_eq!(SparseFormat::CPU_SET.len(), 4);
        assert_eq!(SparseFormat::GPU_SET.len(), 6);
        assert!(!SparseFormat::CPU_SET.contains(&SparseFormat::Hyb));
        assert!(!SparseFormat::GPU_SET.contains(&SparseFormat::Dia));
    }

    #[test]
    fn label_in_maps_to_set_position() {
        assert_eq!(SparseFormat::Dia.label_in(&SparseFormat::CPU_SET), Some(2));
        assert_eq!(SparseFormat::Hyb.label_in(&SparseFormat::CPU_SET), None);
        assert_eq!(SparseFormat::Csr5.label_in(&SparseFormat::GPU_SET), Some(4));
    }

    #[test]
    fn manycore_set_extends_cpu_set() {
        assert_eq!(SparseFormat::MANYCORE_SET.len(), 6);
        for f in SparseFormat::CPU_SET {
            assert!(SparseFormat::MANYCORE_SET.contains(&f));
        }
        assert!(SparseFormat::MANYCORE_SET.contains(&SparseFormat::Sell));
        assert!(SparseFormat::MANYCORE_SET.contains(&SparseFormat::MergeCsr));
        // New formats are appended, so pre-existing positional indices
        // into ALL stay stable across the widening.
        assert_eq!(SparseFormat::Csr5.label_in(&SparseFormat::ALL), Some(6));
        assert_eq!(SparseFormat::Sell.label_in(&SparseFormat::ALL), Some(7));
        assert_eq!(SparseFormat::MergeCsr.label_in(&SparseFormat::ALL), Some(8));
    }

    #[test]
    fn convert_round_trips_every_format() {
        let coo = sample();
        for f in SparseFormat::ALL {
            let any = AnyMatrix::convert(&coo, f).unwrap();
            assert_eq!(any.format(), f);
            assert_eq!(any.to_coo().unwrap(), coo, "format {f}");
        }
    }

    #[test]
    fn spmv_identical_across_all_formats() {
        let coo = sample();
        let x = [0.5, -1.0, 2.0, 3.0];
        let want = coo.spmv_alloc(&x);
        for f in SparseFormat::ALL {
            let any = AnyMatrix::convert(&coo, f).unwrap();
            let got = any.spmv_alloc(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-12), "format {f}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn convert_propagates_dia_failure() {
        let n = 10_000;
        // Anti-diagonal: n distinct diagonals, above DEFAULT_MAX_DIAGS.
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        assert!(AnyMatrix::convert(&coo, SparseFormat::Dia).is_err());
        assert!(AnyMatrix::convert(&coo, SparseFormat::Csr).is_ok());
    }

    #[test]
    fn display_prints_short_name() {
        assert_eq!(SparseFormat::Csr5.to_string(), "CSR5");
    }
}
