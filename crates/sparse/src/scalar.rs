//! Scalar abstraction so kernels work for both `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Floating-point element type usable in all sparse kernels.
///
/// The paper evaluates in single precision (with a note that double
/// precision behaves the same); this trait lets every format, kernel and
/// cost model be generic over the two without pulling in an external
/// num-traits dependency.
pub trait Scalar:
    Copy
    + Default
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes (used by cost models).
    const BYTES: usize;

    /// Lossy conversion from `f64` (used by generators and I/O).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (used by statistics and verification).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused comparison helper: `|self - other| <= tol * max(1, |self|, |other|)`.
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        let (a, b) = (self.to_f64(), other.to_f64());
        (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(<f32 as Scalar>::ZERO, 0.0f32);
        assert_eq!(<f64 as Scalar>::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }

    #[test]
    fn conversions_round_trip() {
        let v = 1.5f64;
        assert_eq!(f32::from_f64(v).to_f64(), 1.5);
        assert_eq!(f64::from_f64(v), 1.5);
    }

    #[test]
    fn abs_works() {
        assert_eq!(Scalar::abs(-2.0f32), 2.0);
        assert_eq!(Scalar::abs(-2.0f64), 2.0);
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        assert!(1.0f64.approx_eq(1.0 + 1e-12, 1e-9));
        assert!(!1.0f64.approx_eq(1.1, 1e-9));
        // Relative comparison for large magnitudes.
        assert!(1e12f64.approx_eq(1e12 + 1.0, 1e-9));
    }
}
