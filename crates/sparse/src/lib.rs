//! Sparse matrix storage formats and SpMV kernels.
//!
//! This crate is the kernel substrate of the `dnnspmv` workspace: it
//! implements, from scratch, every storage format the paper's evaluation
//! touches — COO, CSR, DIA and ELL on the CPU side (the SMATLib set) and
//! HYB, BSR and a CSR5-style tiled format on the GPU side (the cuSPARSE
//! set) — plus the two many-core formats from the follow-on literature,
//! SELL-C-σ and merge-path CSR (arXiv:1805.11938) — together with
//! sequential and [rayon]-parallel sparse matrix–vector multiplication
//! (SpMV) kernels, format conversions, single-pass structural
//! statistics, and MatrixMarket I/O.
//!
//! # Canonical representation
//!
//! [`CooMatrix`] in sorted, deduplicated coordinate form is the canonical
//! exchange type. Every other format converts from and back to it, which
//! keeps conversion logic star-shaped instead of quadratic in the number
//! of formats and gives property tests a single round-trip invariant.
//!
//! # SpMV semantics
//!
//! All kernels compute `y = A * x` (overwriting `y`). The [`Spmv`] trait
//! exposes a sequential `spmv` and a parallel `spmv_par`; both produce
//! identical results up to floating-point associativity, and the parallel
//! kernels are written so that no output element is written by two
//! threads (see the per-format module docs for the partitioning schemes).
//!
//! # Quick example
//!
//! ```
//! use dnnspmv_sparse::{CooMatrix, CsrMatrix, Spmv};
//!
//! // 2x2 diagonal matrix.
//! let coo = CooMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
//! let csr = CsrMatrix::from_coo(&coo);
//! let mut y = vec![0.0; 2];
//! csr.spmv(&[1.0, 1.0], &mut y);
//! assert_eq!(y, vec![2.0, 3.0]);
//! ```

pub mod bsr;
pub mod coo;
pub mod csr;
pub mod csr5;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod error;
pub mod format;
pub mod hyb;
pub mod io;
pub mod merge_csr;
pub mod scalar;
pub mod sell;
pub mod spmv;
pub mod stats;

pub use bsr::BsrMatrix;
pub use coo::{CooBuilder, CooMatrix};
pub use csr::CsrMatrix;
pub use csr5::Csr5Matrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::SparseError;
pub use format::{AnyMatrix, SparseFormat};
pub use hyb::HybMatrix;
pub use merge_csr::MergeCsrMatrix;
pub use scalar::Scalar;
pub use sell::SellMatrix;
pub use spmv::Spmv;
pub use stats::MatrixStats;
