//! MatrixMarket (`.mtx`) coordinate-format I/O.
//!
//! Supports the subset that covers the SuiteSparse collection the paper
//! trains on: `coordinate` storage with `real`, `integer` or `pattern`
//! values and `general`, `symmetric` or `skew-symmetric` symmetry.
//! Pattern entries get value 1. Symmetric inputs are expanded to full
//! storage (both triangles), matching how SpMV libraries consume them.

use crate::coo::{CooBuilder, CooMatrix};
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a MatrixMarket coordinate matrix from any reader.
pub fn read_matrix_market<S: Scalar, R: Read>(reader: R) -> Result<CooMatrix<S>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    message: "empty file".into(),
                })
            }
        }
    };
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("bad header '{header}'"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("unsupported storage '{}' (only coordinate)", toks[2]),
        });
    }
    let kind = match toks[3].as_str() {
        "real" => ValueKind::Real,
        "integer" => ValueKind::Integer,
        "pattern" => ValueKind::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("unsupported value kind '{other}'"),
            })
        }
    };
    let sym = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("unsupported symmetry '{other}'"),
            })
        }
    };

    // Size line (after comments).
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("size line must be 'm n nnz', got '{size_line}'"),
        });
    }
    let parse_dim = |s: &str, lineno: usize| {
        s.parse::<usize>().map_err(|_| SparseError::Parse {
            line: lineno,
            message: format!("bad integer '{s}'"),
        })
    };
    let nrows = parse_dim(dims[0], lineno)?;
    let ncols = parse_dim(dims[1], lineno)?;
    let nnz = parse_dim(dims[2], lineno)?;

    let mut b = CooBuilder::new(nrows, ncols)?;
    // The declared nnz is untrusted input: a hostile size line could
    // otherwise request an enormous (or, for symmetric files, an
    // overflowing `2 * nnz`) up-front allocation before a single entry
    // is parsed. Cap the hint; the builder still grows to any real size.
    const RESERVE_CAP: usize = 1 << 22;
    b.reserve(
        if sym == Symmetry::General {
            nnz
        } else {
            nnz.saturating_mul(2)
        }
        .min(RESERVE_CAP),
    );
    let mut seen = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r = parse_dim(it.next().unwrap_or(""), lineno)?;
        let c = parse_dim(
            it.next().ok_or(SparseError::Parse {
                line: lineno,
                message: "missing column index".into(),
            })?,
            lineno,
        )?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                message: "indices are 1-based".into(),
            });
        }
        let v = match kind {
            ValueKind::Pattern => S::ONE,
            _ => {
                let vs = it.next().ok_or(SparseError::Parse {
                    line: lineno,
                    message: "missing value".into(),
                })?;
                let parsed = vs.parse::<f64>().map_err(|_| SparseError::Parse {
                    line: lineno,
                    message: format!("bad value '{vs}'"),
                })?;
                // `parse::<f64>` happily accepts "NaN"/"inf" (and
                // overflows out-of-range literals to infinity); a
                // non-finite entry would silently poison every SpMV
                // and representation built from this matrix.
                if !parsed.is_finite() {
                    return Err(SparseError::Parse {
                        line: lineno,
                        message: format!("non-finite value '{vs}'"),
                    });
                }
                S::from_f64(parsed)
            }
        };
        b.push(r - 1, c - 1, v)?;
        match sym {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    b.push(c - 1, r - 1, v)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    b.push(c - 1, r - 1, -v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("declared {nnz} entries but found {seen}"),
        });
    }
    Ok(b.build())
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market_path<S: Scalar, P: AsRef<Path>>(
    path: P,
) -> Result<CooMatrix<S>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in `coordinate real general` form.
pub fn write_matrix_market<S: Scalar, W: Write>(
    matrix: &CooMatrix<S>,
    mut w: W,
) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by dnnspmv-sparse")?;
    writeln!(w, "{} {} {}", matrix.nrows(), matrix.ncols(), matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

/// Writes a MatrixMarket file to disk.
pub fn write_matrix_market_path<S: Scalar, P: AsRef<Path>>(
    matrix: &CooMatrix<S>,
    path: P,
) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(matrix, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 3 2\n\
                   1 1 1.5\n\
                   3 2 -2.0\n";
        let m: CooMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 3, 2));
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(2, 1), -2.0);
    }

    #[test]
    fn parses_pattern_as_ones() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m: CooMatrix<f32> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn expands_symmetric() {
        let src =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 4.0\n2 1 1.0\n3 2 2.0\n";
        let m: CooMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 5); // diagonal entry not duplicated
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let m: CooMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn rejects_zero_based_indices() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("declared 2"));
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_matrix_market::<f64, _>("hello\n".as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_array_storage() {
        let src = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("coordinate"));
    }

    #[test]
    fn rejects_empty_file_and_truncated_header() {
        let e = read_matrix_market::<f64, _>("".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("empty file"), "{e}");
        // Header with too few tokens.
        let e = read_matrix_market::<f64, _>("%%MatrixMarket matrix\n".as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::Parse { line: 1, .. }), "{e}");
        // Header but no size line.
        let src = "%%MatrixMarket matrix coordinate real general\n% only comments\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("missing size line"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_indices() {
        // Row index past the declared dimensions: typed error from the
        // builder's bounds check, not a later panic.
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { .. }), "{e}");
    }

    #[test]
    fn rejects_overflowing_index_literals() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n\
                   99999999999999999999999999 1 1.0\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad integer"), "{e}");
    }

    #[test]
    fn rejects_non_numeric_and_non_finite_values() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n";
        let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad value"), "{e}");
        for v in ["NaN", "inf", "-inf", "1e999"] {
            let src = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 {v}\n");
            let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
            assert!(e.to_string().contains("non-finite"), "{v}: {e}");
        }
    }

    #[test]
    fn hostile_nnz_declaration_does_not_preallocate() {
        // usize::MAX entries declared; the reserve hint must be capped
        // (and `2 * nnz` for symmetric files must not overflow). The
        // parse still fails cleanly on the entry-count mismatch.
        for sym in ["general", "symmetric"] {
            let src = format!(
                "%%MatrixMarket matrix coordinate real {sym}\n2 2 {}\n1 1 1.0\n",
                usize::MAX
            );
            let e = read_matrix_market::<f64, _>(src.as_bytes()).unwrap_err();
            assert!(e.to_string().contains("declared"), "{sym}: {e}");
        }
    }

    #[test]
    fn write_read_round_trip() {
        let m = CooMatrix::from_triplets(4, 3, &[(0, 0, 1.25), (1, 2, -0.5), (3, 1, 1e6)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back: CooMatrix<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn path_round_trip() {
        let m = CooMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]).unwrap();
        let dir = std::env::temp_dir().join("dnnspmv_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.mtx");
        write_matrix_market_path(&m, &p).unwrap();
        let back: CooMatrix<f64> = read_matrix_market_path(&p).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&p).ok();
    }
}
