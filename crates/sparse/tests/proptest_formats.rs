//! Property tests over random sparse matrices: every format round-trips
//! through COO exactly, every kernel computes the same product, and the
//! parallel kernels agree with the sequential ones.

use dnnspmv_sparse::{AnyMatrix, CooMatrix, CsrMatrix, MatrixStats, Scalar, SparseFormat, Spmv};
use proptest::prelude::*;

/// Strategy: a random sparse matrix with bounded dimensions and nnz.
fn arb_matrix() -> impl Strategy<Value = CooMatrix<f64>> {
    (2usize..40, 2usize..40).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..120).prop_map(move |mut t| {
            // Avoid exact cancellation making nnz counting ambiguous.
            for e in &mut t {
                if e.2 == 0.0 {
                    e.2 = 1.0;
                }
            }
            CooMatrix::from_triplets(m, n, &t).expect("indices in range")
        })
    })
}

fn arb_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0f64..3.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_format_round_trips(coo in arb_matrix()) {
        for f in SparseFormat::ALL {
            match AnyMatrix::convert(&coo, f) {
                Ok(any) => prop_assert_eq!(any.to_coo().unwrap(), coo.clone(), "format {}", f),
                // Small matrices never exceed padding limits.
                Err(e) => prop_assert!(false, "conversion to {} failed: {e}", f),
            }
        }
    }

    #[test]
    fn spmv_agrees_across_all_formats(coo in arb_matrix()) {
        let x: Vec<f64> = (0..coo.ncols()).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let reference = coo.spmv_alloc(&x);
        for f in SparseFormat::ALL {
            let any = AnyMatrix::convert(&coo, f).expect("small matrices always convert");
            let y = any.spmv_alloc(&x);
            for (a, b) in y.iter().zip(&reference) {
                prop_assert!(a.approx_eq(*b, 1e-10), "format {}: {a} vs {b}", f);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_reference(coo in arb_matrix(), seed in 0u64..1000) {
        let n = coo.ncols();
        let x: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) * 37 % 13) as f64) - 6.0).collect();
        let dense = coo.to_dense();
        let mut want = vec![0.0; coo.nrows()];
        for r in 0..coo.nrows() {
            for c in 0..n {
                want[r] += dense[r * n + c] * x[c];
            }
        }
        let got = coo.spmv_alloc(&x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn parallel_equals_sequential(coo in arb_matrix(), x in (0usize..1).prop_flat_map(|_| arb_vector(0))) {
        // x generated per-matrix below (length must match ncols).
        let _ = x;
        let xv: Vec<f64> = (0..coo.ncols()).map(|i| (i as f64 * 0.37).sin()).collect();
        for f in SparseFormat::ALL {
            let any = AnyMatrix::convert(&coo, f).expect("small matrices always convert");
            let mut y1 = vec![0.0; coo.nrows()];
            let mut y2 = vec![0.0; coo.nrows()];
            any.spmv(&xv, &mut y1);
            any.spmv_par(&xv, &mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                prop_assert!(a.approx_eq(*b, 1e-10), "format {}", f);
            }
        }
    }

    #[test]
    fn transpose_involution_and_spmv_duality(coo in arb_matrix()) {
        let t = coo.transpose();
        prop_assert_eq!(t.transpose(), coo.clone());
        // y^T (A x) == (A^T y)^T x
        let x: Vec<f64> = (0..coo.ncols()).map(|i| (i % 5) as f64 - 2.0).collect();
        let y: Vec<f64> = (0..coo.nrows()).map(|i| (i % 3) as f64 - 1.0).collect();
        let ax = coo.spmv_alloc(&x);
        let aty = t.spmv_alloc(&y);
        let lhs: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn stats_are_consistent(coo in arb_matrix()) {
        let s = MatrixStats::compute(&coo);
        prop_assert_eq!(s.nnz, coo.nnz());
        prop_assert!(s.row_min <= s.row_max);
        prop_assert!(s.row_mean <= s.row_max as f64 + 1e-12);
        prop_assert!(s.density >= 0.0 && s.density <= 1.0);
        prop_assert!(s.dia_fill <= 1.0 + 1e-12);
        prop_assert!(s.ell_fill <= 1.0 + 1e-12);
        prop_assert!(s.bsr_fill <= 1.0 + 1e-12);
        if coo.nnz() > 0 {
            prop_assert!(s.ndiags >= 1);
            prop_assert!(s.bandwidth < coo.nrows().max(coo.ncols()));
        }
    }

    #[test]
    fn csr_row_slices_cover_all_entries(coo in arb_matrix()) {
        let csr = CsrMatrix::from_coo(&coo);
        let mut total = 0;
        for r in 0..coo.nrows() {
            let (cols, vals) = csr.row(r);
            prop_assert_eq!(cols.len(), vals.len());
            total += cols.len();
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1], "row {r} columns not strictly sorted");
            }
        }
        prop_assert_eq!(total, coo.nnz());
    }

    #[test]
    fn matrix_market_round_trip(coo in arb_matrix()) {
        let mut buf = Vec::new();
        dnnspmv_sparse::io::write_matrix_market(&coo, &mut buf).expect("write");
        let back: CooMatrix<f64> =
            dnnspmv_sparse::io::read_matrix_market(buf.as_slice()).expect("read");
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn crop_entries_subset(coo in arb_matrix()) {
        let (m, n) = (coo.nrows(), coo.ncols());
        if m >= 2 && n >= 2 {
            let c = coo.crop(0, m / 2 + 1, 0, n / 2 + 1).expect("valid window");
            prop_assert!(c.nnz() <= coo.nnz());
            for (r, cc, v) in c.iter() {
                prop_assert_eq!(coo.get(r, cc), v);
            }
        }
    }
}
