//! SpMV equivalence properties for the new kernels: SELL-C-σ across
//! several (C, σ) parameter pairs and merge-path CSR across several
//! partition counts, all checked against the scalar CSR reference on
//! random matrices *and* the adversarial shapes the kernels were
//! designed around (power-law skew, empty rows, one mega-row).

use dnnspmv_sparse::{CooMatrix, CsrMatrix, MergeCsrMatrix, Scalar, SellMatrix, Spmv};
use proptest::prelude::*;

/// (C, σ) pairs covering the interesting regimes: unsorted fast path
/// (σ=1), window smaller / equal / larger than typical dims, and
/// chunk heights that do and don't divide the row count.
const SELL_PARAMS: [(usize, usize); 5] = [(8, 1), (8, 32), (4, 4096), (16, 64), (3, 7)];

/// Partition counts from degenerate to far oversubscribed.
const PART_COUNTS: [usize; 5] = [1, 2, 5, 16, 200];

/// Strategy: a random sparse matrix with bounded dimensions and nnz.
fn arb_matrix() -> impl Strategy<Value = CooMatrix<f64>> {
    (2usize..48, 2usize..48).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..160).prop_map(move |mut t| {
            for e in &mut t {
                if e.2 == 0.0 {
                    e.2 = 1.0;
                }
            }
            CooMatrix::from_triplets(m, n, &t).expect("indices in range")
        })
    })
}

/// Strategy: adversarial row-length profiles — power-law skew, empty
/// rows, and a single row holding nearly everything.
fn arb_adversarial() -> impl Strategy<Value = CooMatrix<f64>> {
    (8usize..64, 0usize..3, 0u64..10_000).prop_map(|(n, shape, seed)| {
        let mut t = Vec::new();
        for r in 0..n {
            let deg = match shape {
                // Harmonic power law.
                0 => (n / (r + 1)).clamp(1, n / 2),
                // Mostly empty rows with a few stragglers.
                1 => usize::from(r % 5 == 0),
                // One mega-row, everything else near-empty.
                _ => {
                    if r == 3 % n {
                        n
                    } else {
                        usize::from(r % 2 == 0)
                    }
                }
            };
            for k in 0..deg {
                let c = (r * 31 + k * 7 + seed as usize) % n;
                t.push((r, c, 1.0 + ((r + k) % 9) as f64 * 0.5));
            }
        }
        CooMatrix::from_triplets(n, n, &t).expect("indices in range")
    })
}

/// The scalar CSR product every kernel must reproduce.
fn reference(coo: &CooMatrix<f64>, x: &[f64]) -> Vec<f64> {
    CsrMatrix::from_coo(coo).spmv_alloc(x)
}

fn dense_x(coo: &CooMatrix<f64>) -> Vec<f64> {
    (0..coo.ncols())
        .map(|i| ((i * 13 + 5) % 17) as f64 * 0.375 - 3.0)
        .collect()
}

fn assert_close(got: &[f64], want: &[f64], what: &str) -> Result<(), TestCaseError> {
    for (a, b) in got.iter().zip(want) {
        prop_assert!(a.approx_eq(*b, 1e-5), "{what}: {a} vs {b}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sell_matches_csr_on_random_matrices(coo in arb_matrix()) {
        let x = dense_x(&coo);
        let want = reference(&coo, &x);
        for (c, sigma) in SELL_PARAMS {
            let sell = SellMatrix::from_coo_with_params(&coo, c, sigma);
            assert_close(&sell.spmv_alloc(&x), &want, &format!("SELL C={c} sigma={sigma} seq"))?;
            let mut y = vec![7.0; coo.nrows()];
            sell.spmv_par(&x, &mut y);
            assert_close(&y, &want, &format!("SELL C={c} sigma={sigma} par"))?;
        }
    }

    #[test]
    fn sell_matches_csr_on_adversarial_matrices(coo in arb_adversarial()) {
        let x = dense_x(&coo);
        let want = reference(&coo, &x);
        for (c, sigma) in SELL_PARAMS {
            let sell = SellMatrix::from_coo_with_params(&coo, c, sigma);
            assert_close(&sell.spmv_alloc(&x), &want, &format!("SELL C={c} sigma={sigma}"))?;
        }
    }

    #[test]
    fn merge_csr_matches_csr_on_random_matrices(coo in arb_matrix()) {
        let x = dense_x(&coo);
        let want = reference(&coo, &x);
        let m = MergeCsrMatrix::from_coo(&coo);
        assert_close(&m.spmv_alloc(&x), &want, "merge seq")?;
        let mut y = vec![7.0; coo.nrows()];
        m.spmv_par(&x, &mut y);
        assert_close(&y, &want, "merge par entry")?;
        for parts in PART_COUNTS {
            let mut y = vec![-1.0; coo.nrows()];
            m.spmv_partitioned(&x, &mut y, parts);
            assert_close(&y, &want, &format!("merge parts={parts}"))?;
        }
    }

    #[test]
    fn merge_csr_matches_csr_on_adversarial_matrices(coo in arb_adversarial()) {
        let x = dense_x(&coo);
        let want = reference(&coo, &x);
        let m = MergeCsrMatrix::from_coo(&coo);
        for parts in PART_COUNTS {
            let mut y = vec![0.0; coo.nrows()];
            m.spmv_partitioned(&x, &mut y, parts);
            assert_close(&y, &want, &format!("merge parts={parts}"))?;
        }
    }

    #[test]
    fn sell_round_trips_exactly(coo in arb_adversarial()) {
        // Equivalence is only meaningful if the conversion is lossless:
        // the permutation + padding must reconstruct the matrix bit-for-bit.
        for (c, sigma) in SELL_PARAMS {
            let sell = SellMatrix::from_coo_with_params(&coo, c, sigma);
            prop_assert_eq!(sell.to_coo().unwrap(), coo.clone(), "C={} sigma={}", c, sigma);
        }
    }
}
